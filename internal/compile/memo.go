package compile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/inline"
	"optinline/internal/ir"
	"optinline/internal/opt"
)

// This file implements the memoized evaluation engine: instead of running
// the full pipeline over the whole module for every configuration, each
// function's post-pipeline encoded size is cached per inline closure. By
// default the entry lives in the content-addressed FnCache (fncache.go)
// under a module-independent structural key (closureKey below); with the
// content cache disabled it falls back to the legacy per-module key
// (module fingerprint, function, inlined sites in its inline closure),
// which is the -no-fncache differential oracle.
//
// The inline closure of a function f under a configuration is the smallest
// set of functions containing f that is closed under "callee of an
// inline-labeled site owned by a member". Only those labels can reach f's
// final code:
//
//   - a non-inlined site stays a plain call and never changes the caller's
//     body, so only inline-labeled sites matter;
//   - inline.Apply is a FIFO work queue seeded by scanning functions in
//     module order; an expansion mutates only the function containing the
//     site and enqueues only sites inside that function, so restricting the
//     module to f's closure (kept in module order) yields exactly the
//     projection of the global event sequence that touches the closure —
//     f's expanded body is bit-identical to the whole-module run;
//   - the optimization pipeline is function-local (package opt);
//   - dead-function elimination is label-based and decided analytically
//     from the labels of the callee's incoming edges (CalleesAllInline), so
//     survival needs no compilation at all;
//   - the size metric is additive per function (package codegen).
//
// Size(cfg) is therefore the sum of cached per-function sizes over the
// surviving functions. A configuration that differs from an evaluated one
// in a few labels recompiles only the functions whose closures contain a
// flipped site — during the recursive search, sibling subtrees share the
// rest. The one deliberate approximation is the inliner's global growth
// bound (inline.DefaultMaxInstrs): the memoized path applies it per
// closure rather than module-wide, so the two paths can diverge only on
// configurations that trip the 4M-instruction safety valve, which the
// corpus never approaches (and both paths still return InfSize for any
// closure that trips it alone).

// funcInfo is the per-function slice of the candidate graph.
type funcInfo struct {
	name     string
	idx      int    // module order
	fp       uint64 // ir.Function.Fingerprint of the base body
	exported bool
	sites    []int // candidate sites owned (caller side), ascending

	// callSites lists the site ID of every call instruction in the base
	// body, in block/instruction order — including non-candidate calls
	// (recursive, unknown callee). The content-addressed cache key streams
	// this sequence to capture site identity structure (which calls are
	// coupled copies of one another) without depending on the module's
	// absolute site numbering; see closureKey.
	callSites []int

	// calleeNames is parallel to callSites: the callee name referenced by
	// each call instruction. closureKey canonicalizes these names (together
	// with the members' own names) to bind each member's name to its body
	// without making the key depend on the literal spelling of names that
	// are never referenced.
	calleeNames []string

	// Incoming-edge view, for deciding label-based DFE locally: the
	// candidate sites targeting this function, and whether any of them is
	// recursive (a recursive incoming edge pins the function alive).
	inSites []int
	recIn   bool
}

// memoState holds the per-function site ownership, the size cache, and the
// inverse dependency index the delta engine prices toggles with.
type memoState struct {
	funcs      []*funcInfo // module order
	siteCallee map[int]*funcInfo
	siteCaller map[int]*funcInfo

	// ancestors[i] lists (ascending, including i itself) the indices of
	// functions that can reach function i through candidate call edges.
	// A function f's inline closure can contain a site s only if f reaches
	// s's owner, so ancestors[caller(s)] is exactly the set of functions
	// whose memo key can change when s's label flips — the dirty set.
	// Built lazily on the first delta evaluation: clients that never price
	// incrementally (-no-delta, Build-only tools) pay nothing for it.
	rev       [][]int32 // callee idx -> caller idxs
	ancOnce   sync.Once
	ancestors [][]int32

	mu      sync.Mutex
	entries map[string]*memoEntry
}

// memoEntry is a single-flight cache slot: the first requester computes,
// concurrent requesters for the same key wait on done. failed marks an
// entry whose computation panicked and was withdrawn from the map; waiters
// seeing it retry instead of reading a bogus size.
type memoEntry struct {
	done   chan struct{}
	size   int
	failed bool
}

// buildMemo indexes site ownership per function.
func buildMemo(base *ir.Module, g *callgraph.Graph) *memoState {
	ms := &memoState{
		siteCallee: make(map[int]*funcInfo),
		siteCaller: make(map[int]*funcInfo),
		entries:    make(map[string]*memoEntry),
	}
	byName := make(map[string]*funcInfo, len(base.Funcs))
	for i, f := range base.Funcs {
		fi := &funcInfo{name: f.Name, idx: i, fp: f.Fingerprint(), exported: f.Exported}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					fi.callSites = append(fi.callSites, in.Site)
					fi.calleeNames = append(fi.calleeNames, in.Callee)
				}
			}
		}
		ms.funcs = append(ms.funcs, fi)
		byName[f.Name] = fi
	}
	rev := make([][]int32, len(ms.funcs))
	for _, e := range g.Edges {
		caller, callee := byName[e.Caller], byName[e.Callee]
		caller.sites = append(caller.sites, e.Site)
		callee.inSites = append(callee.inSites, e.Site)
		if e.Recursive {
			callee.recIn = true
		}
		ms.siteCallee[e.Site] = callee
		ms.siteCaller[e.Site] = caller
		rev[callee.idx] = append(rev[callee.idx], int32(caller.idx))
	}
	for _, fi := range ms.funcs {
		sort.Ints(fi.sites)
		sort.Ints(fi.inSites)
	}
	ms.rev = rev
	return ms
}

// ensureAncestors builds the inverse reachability index on first use.
func (ms *memoState) ensureAncestors() {
	ms.ancOnce.Do(func() { ms.ancestors = buildAncestors(ms.rev) })
}

// buildAncestors computes, per function, every function that can reach it
// through candidate call edges (reflexive). One reverse BFS per function;
// module call graphs are small, so the quadratic worst case is irrelevant.
func buildAncestors(rev [][]int32) [][]int32 {
	n := len(rev)
	out := make([][]int32, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for v := 0; v < n; v++ {
		anc := []int32{int32(v)}
		mark[v] = v
		for i := 0; i < len(anc); i++ {
			for _, u := range rev[anc[i]] {
				if mark[u] != v {
					mark[u] = v
					anc = append(anc, u)
				}
			}
		}
		sort.Slice(anc, func(i, j int) bool { return anc[i] < anc[j] })
		out[v] = anc
	}
	return out
}

// dirty returns (ascending, deduplicated) the indices of every function
// whose contribution to the total size can change when the given sites
// flip: the toggled sites' owners' ancestors — whose closures may gain or
// lose the site — plus the callees, whose DFE survival is decided by the
// labels of exactly these incoming edges.
func (ms *memoState) dirty(toggles []int) []int32 {
	ms.ensureAncestors()
	seen := make([]bool, len(ms.funcs))
	var out []int32
	add := func(i int32) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, s := range toggles {
		caller, ok := ms.siteCaller[s]
		if !ok {
			continue // not a candidate site: flipping it is a no-op
		}
		for _, a := range ms.ancestors[caller.idx] {
			add(a)
		}
		add(int32(ms.siteCallee[s].idx))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// alive is the label-based DFE predicate of one function, decided locally
// from its incoming candidate edges: it matches callgraph.CalleesAllInline
// combined with the exported check of measureMemo, without building the
// whole-module maps.
func (ms *memoState) alive(fi *funcInfo, cfg *callgraph.Config) bool {
	if fi.exported || fi.recIn || len(fi.inSites) == 0 {
		return true
	}
	for _, s := range fi.inSites {
		if !cfg.Inline(s) {
			return true
		}
	}
	return false
}

// closure returns f's inline closure under cfg (module order) and the
// inline-labeled sites owned by its members — the cache identity of f's
// final code.
func (ms *memoState) closure(f *funcInfo, cfg *callgraph.Config) ([]*funcInfo, []int) {
	members := []*funcInfo{f}
	seen := map[*funcInfo]bool{f: true}
	var inlined []int
	for i := 0; i < len(members); i++ {
		for _, s := range members[i].sites {
			if !cfg.Inline(s) {
				continue
			}
			inlined = append(inlined, s)
			if callee := ms.siteCallee[s]; !seen[callee] {
				seen[callee] = true
				members = append(members, callee)
			}
		}
	}
	// Module order matters: inline.Apply seeds its work queue by scanning
	// functions in module order, and with recursion trails the expansion
	// fixpoint depends on that order. Keeping it makes the sub-module
	// queue an exact projection of the whole-module one.
	sort.Slice(members, func(i, j int) bool { return members[i].idx < members[j].idx })
	sort.Ints(inlined)
	return members, inlined
}

// measureMemo is the memoized equivalent of one whole-module pipeline run:
// label-based DFE decides survival analytically, and each survivor's size
// comes from the per-closure cache.
func (c *Compiler) measureMemo(cfg *callgraph.Config) int {
	removable := c.graph.CalleesAllInline(cfg)
	total := 0
	for _, fi := range c.memo.funcs {
		if !fi.exported && removable[fi.name] {
			continue
		}
		s := c.funcSize(fi, cfg)
		if s == InfSize {
			c.errors.Add(1)
			return InfSize
		}
		total += s
	}
	return total
}

// funcSize returns fi's post-pipeline encoded size under cfg, computing it
// at most once per closure configuration (single-flight, so concurrent
// search workers requesting the same closure share one compilation).
//
// With the content cache on (the default), the entry lives in the shared
// FnCache under a content-derived key, so it is found by any compiler whose
// closure has the same structure — other configurations, other corpus
// files, other runs. The legacy per-module string key below is the
// -no-fncache differential oracle.
func (c *Compiler) funcSize(fi *funcInfo, cfg *callgraph.Config) int {
	members, inlined := c.memo.closure(fi, cfg)
	if c.fncacheOn {
		key := c.closureKey(fi, members, cfg)
		return c.fncache.sizeOf(key, &c.funcHits, &c.funcMisses, func() int {
			return c.compileClosure(fi, members, cfg)
		})
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%016x/%s/", c.fingerprint, fi.name)
	for i, s := range inlined {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(s))
	}
	key := sb.String()

	ms := c.memo
	for {
		ms.mu.Lock()
		if e, ok := ms.entries[key]; ok {
			ms.mu.Unlock()
			<-e.done
			if e.failed {
				continue // computation panicked and was withdrawn; retry
			}
			c.funcHits.Add(1)
			return e.size
		}
		e := &memoEntry{done: make(chan struct{})}
		ms.entries[key] = e
		ms.mu.Unlock()

		c.funcMisses.Add(1)
		// If compileClosure panics, withdraw the poisoned entry and release
		// waiters before the panic unwinds, so concurrent workers sharing the
		// memo neither block forever nor read a bogus size.
		panicked := true
		func() {
			defer func() {
				if panicked {
					ms.mu.Lock()
					delete(ms.entries, key)
					ms.mu.Unlock()
					e.failed = true
					close(e.done)
				}
			}()
			e.size = c.compileClosure(fi, members, cfg)
			panicked = false
		}()
		close(e.done)
		return e.size
	}
}

// canonPool recycles the site-canonicalization map closureKey fills and
// clears on every call; key derivation sits on the hit path of every memo
// lookup, so it must not allocate.
var canonPool = sync.Pool{
	New: func() any { return make(map[int]int, 32) },
}

// nameCanonPool recycles closureKey's name-canonicalization map, for the
// same reason.
var nameCanonPool = sync.Pool{
	New: func() any { return make(map[string]int, 32) },
}

// closureKey derives the content-addressed cache key of fi's compilation
// under cfg. It must have the property that equal keys imply equal
// compileClosure results, with no reference to this module's identity. The
// key streams:
//
//   - a schema string (fnKeyVersion, PipelineVersion) and the codegen
//     target;
//   - the index of fi among the closure's members, since compileClosure
//     measures only fi after inlining the whole closure;
//   - per member, in module order: the canonical index of its own name
//     (first-occurrence order over every callee reference in the closure,
//     then over the member names themselves), its structural fingerprint,
//     then per call instruction in body order the site's canonical index
//     (first occurrence order across the whole stream) and its label bit.
//
// Why this is sound: compileClosure's result is a pure function of the
// closure's member bodies (in module order), the name→body binding that
// resolves calls to members, the site labels inside it, and site
// *identity* — inline.Apply consults sites only through cfg.Inline and
// through trail-equality when detecting recursive re-expansion, so any
// site renumbering that preserves which call instructions share an ID
// yields a bit-identical expansion. Mapping IDs to first-occurrence
// canonical indices preserves exactly those equivalence classes.
//
// Names need the same treatment. A member's own name is deliberately
// absent from its fingerprint (ir/fingerprint.go), so the fingerprint
// sequence alone cannot distinguish two closures that permute which name
// binds to which body: with f calling g and h, {g→B1, h→B2} in one module
// and {g→B2, h→B1} (module order permuted to compensate) in another
// stream identical fingerprints yet inline different bodies at the same
// sites. The canonical own-name indices restore the binding: equal member
// fingerprints pin the bodies *including their literal callee-name
// strings* (callee and global names ARE hashed inside bodies — they are
// the linkage that decides what inlines), so the first-occurrence classes
// of callee references coincide, and each member's index then says which
// referenced name — if any — its body is bound to. A member whose name is
// never referenced inside the closure gets a fresh index past the callee
// classes; its literal spelling cannot affect inlining or codegen (encoded
// sizes are name-independent: codegen prices calls and global ops by
// shape, not name), so fresh indices deliberately avoid splitting
// otherwise-identical leaf closures. The base module's unreferenced
// globals don't affect function sizes, so they are not part of the key.
func (c *Compiler) closureKey(fi *funcInfo, members []*funcInfo, cfg *callgraph.Config) FnKey {
	h := ir.NewHasher()
	h.Str(fnCacheSchema)
	h.Byte(byte(c.target))
	for i, m := range members {
		if m == fi {
			h.Int(i)
			break
		}
	}
	names := nameCanonPool.Get().(map[string]int)
	for _, m := range members {
		for _, cn := range m.calleeNames {
			if _, ok := names[cn]; !ok {
				names[cn] = len(names)
			}
		}
	}
	canon := canonPool.Get().(map[int]int)
	for _, m := range members {
		ni, ok := names[m.name]
		if !ok {
			ni = len(names)
			names[m.name] = ni
		}
		h.Int(ni)
		h.Uint64(m.fp)
		h.Int(len(m.callSites))
		for _, s := range m.callSites {
			ci, ok := canon[s]
			if !ok {
				ci = len(canon)
				canon[s] = ci
			}
			h.Int(ci)
			if cfg.Inline(s) {
				h.Byte(1)
			} else {
				h.Byte(0)
			}
		}
	}
	clear(canon)
	canonPool.Put(canon)
	clear(names)
	nameCanonPool.Put(names)
	hi, lo := h.Sum128()
	return FnKey{Hi: hi, Lo: lo}
}

// compileClosure runs inlining over just the closure's functions and
// optimizes + measures the one function of interest.
func (c *Compiler) compileClosure(fi *funcInfo, members []*funcInfo, cfg *callgraph.Config) int {
	sub := ir.NewModule(c.base.Name)
	for _, g := range c.base.Globals {
		sub.AddGlobal(g)
	}
	for _, m := range members {
		sub.AddFunc(c.base.Func(m.name).Clone())
	}
	if err := inline.Apply(sub, cfg, inline.Options{}); err != nil {
		return InfSize
	}
	fn := sub.Func(fi.name)
	opt.Function(fn)
	return codegen.FunctionSize(fn, c.target)
}
