package compile

import "optinline/internal/callgraph"

// This file exposes the contribution-handle bookkeeping the branch-and-bound
// search (internal/search) prices its admissible bounds with. The handles
// are ordinary Sized values, but they are built and advanced entirely
// outside the whole-configuration cache and the evaluation counters:
// pruning is bookkeeping about configurations the search may *never*
// evaluate, so charging them would make the Evaluations counter depend on
// how much pruning happened rather than on how many configurations were
// compiled.
//
// Availability is deliberately wider than the delta engine's: pruning rides
// on the per-function memo only (memoize && !check), independent of the
// SetDelta toggle. A -no-delta run therefore makes byte-identical pruning
// decisions — and byte-identical evaluation counters — as a delta run,
// which is what the search's counter-parity tests pin down.

// PruneActive reports whether contribution handles for branch-and-bound
// bookkeeping are available: the per-function memo must be on and checked
// mode off (checked mode forces whole-module pipelines, and pruning would
// skip exactly the work being checked).
func (c *Compiler) PruneActive() bool { return c.memoize && !c.check }

// ContribBase builds a contribution handle for cfg without consulting or
// charging the whole-configuration cache. Returns nil when PruneActive is
// false; the returned handle has no contributions (HasContrib false) when
// cfg fails to compile.
func (c *Compiler) ContribBase(cfg *callgraph.Config) *Sized {
	if !c.PruneActive() {
		return nil
	}
	return c.contribHandle(cfg)
}

// RebaseContrib prices base⊕toggles like Rebase but entirely outside the
// whole-configuration cache and the evaluation/delta counters: only the
// dirty functions' contributions are recomputed (their closure compiles
// still land in — and are served from — the per-function memo, so the work
// is shared with any later real evaluation of the same region). Returns nil
// when the base carries no contributions or PruneActive is false; returns a
// contribution-free handle when the toggled configuration fails to compile.
func (c *Compiler) RebaseContrib(base *Sized, toggles []int) *Sized {
	if base == nil || base.full || !c.PruneActive() {
		return nil
	}
	cfg := c.toggled(base, toggles)
	contrib := make([]int, len(base.contrib))
	copy(contrib, base.contrib)
	dirty := c.memo.dirty(toggles)
	total := c.applyDirty(base, cfg, dirty, contrib)
	if total == InfSize {
		return &Sized{cfg: cfg, total: InfSize, full: true}
	}
	return &Sized{cfg: cfg, total: total, contrib: contrib}
}

// HasContrib reports whether the handle carries per-function contributions
// (false for handles built with the delta engine off and for configurations
// that failed to compile — InfSize totals never carry contributions).
func (s *Sized) HasContrib() bool { return s != nil && !s.full }

// ContribSum returns the sum of the handle's per-function contributions
// over the given memo-order function indices (DFE-dead functions contribute
// zero). The search uses it as the bound mass: within a subtree whose
// remaining free labels span exactly these functions, the total size can
// drop below the handle's by at most this sum, because every per-function
// contribution is non-negative.
func (s *Sized) ContribSum(idxs []int) int {
	if !s.HasContrib() {
		return 0
	}
	total := 0
	for _, i := range idxs {
		total += s.contrib[i]
	}
	return total
}
