package compile

import (
	"runtime"
	"sync"
	"sync/atomic"

	"optinline/internal/callgraph"
)

// This file implements incremental delta evaluation on top of the memo
// engine. The paper's exactness argument (DESIGN.md §1) says total size is
// a sum of independent per-component terms; the memo engine already caches
// the per-function terms, but Size still re-derives the whole sum — every
// call walks all functions, rebuilds their closure keys, and re-runs the
// label-based DFE maps — even when the configuration differs from an
// already-priced one in a single label.
//
// A Sized handle pins a priced base configuration together with its
// per-function contributions. SizeDelta prices a toggled variant by
// recomputing only the dirty functions:
//
//   - the toggled sites' owners' ancestors in the candidate call graph
//     (precomputed once per Compiler, memo.go) — the only functions whose
//     inline-closure memo key can contain a flipped site; a site enters a
//     closure only after its owner does, so its own label never gates the
//     owner's membership and the static ancestor set is a sound
//     over-approximation for every base configuration;
//   - the toggled sites' callees, whose DFE survival is a pure function of
//     exactly these incoming labels (memoState.alive).
//
// Everything else — survival and size alike — provably cannot change, so
// an n-edge autotuner round costs n dirty-closure recompiles instead of n
// whole-module memo walks. Results are byte-identical to the full path:
// delta totals come from the same funcSize cache the full path fills, the
// same single-flight whole-config cache dedupes and counts evaluations, so
// sizes, configurations, and evaluation counters never depend on which
// path priced a configuration.

// Sized is a priced configuration handle: the configuration, its total
// size, and (when the delta engine is active) the per-function size
// contributions the total decomposes into. Handles are immutable and safe
// for concurrent use; SizeDelta and Rebase derive toggled prices from them.
type Sized struct {
	cfg     *callgraph.Config
	total   int
	contrib []int // per memoState.funcs index; 0 for DFE-dead functions
	full    bool  // no contributions: delta requests fall back to Size
}

// Size returns the total size of the handle's configuration.
func (s *Sized) Size() int { return s.total }

// Config returns a copy of the handle's configuration.
func (s *Sized) Config() *callgraph.Config { return s.cfg.Clone() }

// Inline reports the handle configuration's label for a site.
func (s *Sized) Inline(site int) bool { return s.cfg.Inline(site) }

// toggled returns base's configuration with every listed site's label
// flipped relative to the base (duplicates are therefore harmless).
func (c *Compiler) toggled(base *Sized, toggles []int) *callgraph.Config {
	cfg := base.cfg.Clone()
	for _, s := range toggles {
		cfg.Set(s, !base.cfg.Inline(s))
	}
	return cfg
}

// Sized evaluates cfg — charging the whole-config cache and the evaluation
// counters exactly like Size — and returns the handle the delta calls
// start from. When the delta engine is inactive (SetDelta(false), memo
// off, or checked mode) the handle carries only the total and every
// derived request falls back to the full path.
func (c *Compiler) Sized(cfg *callgraph.Config) *Sized {
	if !c.DeltaEnabled() {
		return &Sized{cfg: cfg.Clone(), total: c.Size(cfg), full: true}
	}
	e, isNew := c.lookup(cfg)
	if !isNew {
		<-e.done
		c.hits.Add(1)
		return c.handleFor(cfg, e.size)
	}
	h := c.newHandle(cfg)
	e.size = h.total
	close(e.done)
	return h
}

// DeltaBase builds a handle for cfg without consulting or charging the
// whole-config cache, for bases that are not themselves evaluations of the
// client algorithm (the search prices its root this way: the clean slate
// is only evaluated when a leaf requests it, exactly as on the full path).
// Returns nil when the delta engine is inactive.
func (c *Compiler) DeltaBase(cfg *callgraph.Config) *Sized {
	if !c.DeltaEnabled() {
		return nil
	}
	return c.contribHandle(cfg)
}

// SizeDelta prices the configuration that differs from base by the given
// toggles. It is the incremental equivalent of Size(toggled config): same
// single-flight cache, same counters, byte-identical result — but a miss
// recomputes only the dirty functions instead of walking the module.
func (c *Compiler) SizeDelta(base *Sized, toggles []int) int {
	cfg := c.toggled(base, toggles)
	if base.full || !c.DeltaEnabled() {
		return c.Size(cfg)
	}
	e, isNew := c.lookup(cfg)
	if !isNew {
		<-e.done
		c.hits.Add(1)
		return e.size
	}
	e.size = c.measureDelta(base, cfg, toggles, nil)
	close(e.done)
	return e.size
}

// SizeDeltaParallel prices many toggle sets against the same base
// concurrently, in order. workers <= 0 selects GOMAXPROCS.
func (c *Compiler) SizeDeltaParallel(base *Sized, toggles [][]int, workers int) []int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(toggles) {
		workers = len(toggles)
	}
	out := make([]int, len(toggles))
	if workers <= 1 {
		for i, t := range toggles {
			out[i] = c.SizeDelta(base, t)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(toggles) {
					return
				}
				out[i] = c.SizeDelta(base, toggles[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Rebase is SizeDelta returning a full handle: it prices base⊕toggles
// (one cache request, like SizeDelta) and carries the updated per-function
// contributions forward, so a round-based client advances its base without
// re-walking the module.
func (c *Compiler) Rebase(base *Sized, toggles []int) *Sized {
	cfg := c.toggled(base, toggles)
	if base.full || !c.DeltaEnabled() {
		return &Sized{cfg: cfg, total: c.Size(cfg), full: true}
	}
	contrib := make([]int, len(base.contrib))
	copy(contrib, base.contrib)
	e, isNew := c.lookup(cfg)
	if isNew {
		e.size = c.measureDelta(base, cfg, toggles, contrib)
		close(e.done)
	} else {
		<-e.done
		c.hits.Add(1)
		if e.size != InfSize {
			c.applyDelta(base, cfg, toggles, contrib)
		}
	}
	if e.size == InfSize {
		return &Sized{cfg: cfg, total: InfSize, full: true}
	}
	return &Sized{cfg: cfg, total: e.size, contrib: contrib}
}

// measureDelta is the miss path of SizeDelta/Rebase: it mirrors measure()'s
// counter discipline (one evaluation; one error on a failed build) while
// doing only the dirty work.
func (c *Compiler) measureDelta(base *Sized, cfg *callgraph.Config, toggles []int, contrib []int) int {
	c.evals.Add(1)
	c.deltaEvals.Add(1)
	total := c.applyDelta(base, cfg, toggles, contrib)
	if total == InfSize {
		c.errors.Add(1)
	}
	return total
}

// applyDelta recomputes the dirty functions' contributions under cfg and
// returns the adjusted total (InfSize if any dirty closure fails to
// compile). When contrib is non-nil (a copy of base's contributions) the
// dirty entries are updated in place.
func (c *Compiler) applyDelta(base *Sized, cfg *callgraph.Config, toggles []int, contrib []int) int {
	dirty := c.memo.dirty(toggles)
	c.deltaDirty.Add(int64(len(dirty)))
	return c.applyDirty(base, cfg, dirty, contrib)
}

// applyDirty reprices the given dirty functions under cfg against base's
// contributions. Shared by the counted delta path above and the uncounted
// bound bookkeeping in prune.go.
func (c *Compiler) applyDirty(base *Sized, cfg *callgraph.Config, dirty []int32, contrib []int) int {
	ms := c.memo
	total := base.total
	for _, i := range dirty {
		fi := ms.funcs[i]
		size := 0
		if ms.alive(fi, cfg) {
			size = c.funcSize(fi, cfg)
			if size == InfSize {
				return InfSize
			}
		}
		if contrib != nil {
			contrib[i] = size
		}
		total += size - base.contrib[i]
	}
	return total
}

// newHandle is the miss path of Sized: measureMemo with per-function
// contribution recording.
func (c *Compiler) newHandle(cfg *callgraph.Config) *Sized {
	c.evals.Add(1)
	h := c.contribHandle(cfg)
	if h.total == InfSize {
		c.errors.Add(1)
	}
	return h
}

// handleFor rebuilds the contribution vector of an already-priced
// configuration; every per-function term is memo-resident, so this is a
// cache walk, not a compilation.
func (c *Compiler) handleFor(cfg *callgraph.Config, size int) *Sized {
	if size == InfSize {
		return &Sized{cfg: cfg.Clone(), total: InfSize, full: true}
	}
	return c.contribHandle(cfg)
}

// contribHandle prices cfg function by function, recording contributions.
// It touches only the per-function memo, never the whole-config cache.
func (c *Compiler) contribHandle(cfg *callgraph.Config) *Sized {
	ms := c.memo
	contrib := make([]int, len(ms.funcs))
	total := 0
	for i, fi := range ms.funcs {
		if !ms.alive(fi, cfg) {
			continue
		}
		s := c.funcSize(fi, cfg)
		if s == InfSize {
			return &Sized{cfg: cfg.Clone(), total: InfSize, full: true}
		}
		contrib[i] = s
		total += s
	}
	return &Sized{cfg: cfg.Clone(), total: total, contrib: contrib}
}
