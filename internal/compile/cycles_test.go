package compile

import (
	"math/rand"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/interp"
	"optinline/internal/ir"
	"optinline/internal/workload"
)

// profileFor builds the baseline (no-inline) module and interprets it once,
// returning nil for files whose dynamic call tree exceeds the fuel budget
// (they are skipped, like the Fig. 19 experiment skips them).
func profileFor(t testing.TB, c *Compiler) *interp.Profile {
	t.Helper()
	built, err := c.Build(callgraph.NewConfig())
	if err != nil {
		t.Fatalf("baseline build: %v", err)
	}
	_, p, err := interp.Collect(built, "entry", []int64{7}, interp.Options{Fuel: 5_000_000})
	if err != nil {
		return nil
	}
	return p
}

// cycleCorpus pairs generated files with baseline profiles.
func cycleCorpus(t testing.TB) []struct {
	file workload.File
	prof *interp.Profile
} {
	var out []struct {
		file workload.File
		prof *interp.Profile
	}
	for _, f := range memoCorpus(t) {
		c := New(f.Module, codegen.TargetX86)
		if p := profileFor(t, c); p != nil {
			out = append(out, struct {
				file workload.File
				prof *interp.Profile
			}{f, p})
		}
	}
	if len(out) < 3 {
		t.Fatalf("cycle corpus too trivial: %d interpretable files", len(out))
	}
	return out
}

// TestCyclesDeltaMatchesFull is the exactness theorem of the cycle engine:
// for arbitrary bases and toggle sets, the incremental price must equal the
// -no-cycledelta whole-module evaluation of the same configuration.
func TestCyclesDeltaMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, fc := range cycleCorpus(t) {
		dc := New(fc.file.Module, codegen.TargetX86)
		fcomp := New(fc.file.Module, codegen.TargetX86)
		delta, err := dc.NewCyclePricer(fc.prof, CycleOptions{CacheBytes: 512})
		if err != nil {
			t.Fatalf("%s: %v", fc.file.Name, err)
		}
		full, err := fcomp.NewCyclePricer(fc.prof, CycleOptions{CacheBytes: 512})
		if err != nil {
			t.Fatalf("%s: %v", fc.file.Name, err)
		}
		full.SetCycleDelta(false)
		sites := dc.Graph().Sites()

		for trial := 0; trial < 3; trial++ {
			baseCfg := callgraph.NewConfig()
			if trial > 0 {
				for _, s := range sites {
					if rng.Intn(2) == 0 {
						baseCfg.Set(s, true)
					}
				}
			}
			base := delta.Priced(baseCfg)
			if got, want := base.Cycles(), full.Cycles(baseCfg); got != want {
				t.Fatalf("%s base %v: Priced %d != full %d", fc.file.Name, baseCfg, got, want)
			}
			for _, s := range sites {
				cfg := baseCfg.Clone().Set(s, !baseCfg.Inline(s))
				if got, want := delta.CyclesDelta(base, []int{s}), full.Cycles(cfg); got != want {
					t.Fatalf("%s base %v toggle %d: delta %d != full %d",
						fc.file.Name, baseCfg, s, got, want)
				}
			}
			var multi []int
			for _, s := range sites {
				if rng.Intn(3) == 0 {
					multi = append(multi, s)
				}
			}
			cfg := baseCfg.Clone()
			for _, s := range multi {
				cfg.Set(s, !baseCfg.Inline(s))
			}
			if got, want := delta.CyclesDelta(base, multi), full.Cycles(cfg); got != want {
				t.Fatalf("%s base %v toggles %v: delta %d != full %d",
					fc.file.Name, baseCfg, multi, got, want)
			}
		}
		if delta.Stats().Repricings == 0 {
			t.Fatalf("%s: incremental path never engaged", fc.file.Name)
		}
		if full.Stats().FullEvals == 0 || full.Stats().Repricings != 0 {
			t.Fatalf("%s: oracle stats %+v", fc.file.Name, full.Stats())
		}
	}
}

// TestCycleRebaseAdvancesHandle mirrors the size engine's Rebase contract.
func TestCycleRebaseAdvancesHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, fc := range cycleCorpus(t) {
		dc := New(fc.file.Module, codegen.TargetX86)
		fcomp := New(fc.file.Module, codegen.TargetX86)
		delta, _ := dc.NewCyclePricer(fc.prof, CycleOptions{})
		full, _ := fcomp.NewCyclePricer(fc.prof, CycleOptions{})
		full.SetCycleDelta(false)
		sites := dc.Graph().Sites()

		handle := delta.Priced(callgraph.NewConfig())
		cfg := callgraph.NewConfig()
		for step := 0; step < 4; step++ {
			var toggles []int
			for _, s := range sites {
				if rng.Intn(3) == 0 {
					toggles = append(toggles, s)
				}
			}
			for _, s := range toggles {
				cfg.Set(s, !cfg.Inline(s))
			}
			handle = delta.Rebase(handle, toggles)
			if got, want := handle.Cycles(), full.Cycles(cfg); got != want {
				t.Fatalf("%s step %d: rebased cycles %d != full %d", fc.file.Name, step, got, want)
			}
			if !handle.Config().Equal(cfg) {
				t.Fatalf("%s step %d: rebased config drifted", fc.file.Name, step)
			}
			s := sites[rng.Intn(len(sites))]
			probe := cfg.Clone().Set(s, !cfg.Inline(s))
			if got, want := delta.CyclesDelta(handle, []int{s}), full.Cycles(probe); got != want {
				t.Fatalf("%s step %d probe %d: delta %d != full %d", fc.file.Name, step, s, got, want)
			}
		}
	}
}

// TestCyclesParallelDeterminism: CyclesDeltaParallel must return identical
// prices for workers 1, 2, and 8 — the cycle analogue of the CLIs'
// bit-identical -jobs guarantee.
func TestCyclesParallelDeterminism(t *testing.T) {
	fc := cycleCorpus(t)[0]
	var want []int64
	for _, workers := range []int{1, 2, 8} {
		c := New(fc.file.Module, codegen.TargetX86)
		p, err := c.NewCyclePricer(fc.prof, CycleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sites := c.Graph().Sites()
		toggles := make([][]int, len(sites))
		for i, s := range sites {
			toggles[i] = []int{s}
		}
		base := p.Priced(callgraph.NewConfig())
		got := p.CyclesDeltaParallel(base, toggles, workers)
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d toggle %d: %d != %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestCyclePricerDisabledPaths: memo-off and checked compilers must force
// the full Build path, transparently.
func TestCyclePricerDisabledPaths(t *testing.T) {
	fc := cycleCorpus(t)[0]
	ref := New(fc.file.Module, codegen.TargetX86)
	oracle, _ := ref.NewCyclePricer(fc.prof, CycleOptions{})
	oracle.SetCycleDelta(false)
	s := ref.Graph().Sites()[0]
	probe := callgraph.NewConfig().Set(s, true)
	want := oracle.Cycles(probe)

	memoOff := New(fc.file.Module, codegen.TargetX86)
	memoOff.SetMemoize(false)
	checked := NewWithOptions(fc.file.Module, codegen.TargetX86, Options{Check: true})
	for name, c := range map[string]*Compiler{"memo-off": memoOff, "checked": checked} {
		p, err := c.NewCyclePricer(fc.prof, CycleOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.DeltaEnabled() {
			t.Fatalf("%s: DeltaEnabled() = true", name)
		}
		base := p.Priced(callgraph.NewConfig())
		if got := p.CyclesDelta(base, []int{s}); got != want {
			t.Fatalf("%s: fallback price %d != oracle %d", name, got, want)
		}
		if p.Stats().Repricings != 0 {
			t.Fatalf("%s: priced incrementally despite disabled engine", name)
		}
	}
}

// TestCycleModelExactOnStraightLine: on branch-free programs the "static
// body cost × profiled entries" model is not an approximation — the pricer
// must reproduce the interpreter's cycle count exactly, for every
// configuration, including call/arg overheads, external calls, and the LRU
// i-cache penalty. This pins the whole bookkeeping chain end to end.
func TestCycleModelExactOnStraightLine(t *testing.T) {
	src := `
global @acc

func @leaf(%x) {
entry:
  %two = const 2
  %m = mul %x, %two
  %e = call @external_helper(%m)
  ret %e
}

func @mid(%a) {
entry:
  %l = call @leaf(%a)
  %one = const 1
  %s = add %l, %one
  storeg @acc, %s
  ret %s
}

func @side(%a) {
entry:
  %g = loadg @acc
  %v = add %g, %a
  output %v
  ret %v
}

export func @entry(%n) {
entry:
  %a = call @mid(%n)
  %b = call @leaf(%a)
  %c2 = call @side(%b)
  %r = add %a, %c2
  ret %r
}
`
	m := ir.MustParse("straight", src)
	c := New(m, codegen.TargetX86)
	const cacheBytes = 48 // small enough that inlining changes miss behaviour
	built, err := c.Build(callgraph.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, prof, err := interp.Collect(built, "entry", []int64{7}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pricer, err := c.NewCyclePricer(prof, CycleOptions{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	sites := c.Graph().Sites()
	if len(sites) < 3 {
		t.Fatalf("expected at least 3 candidate sites, got %v", sites)
	}
	// Exhaust every configuration over the candidate sites.
	for mask := 0; mask < 1<<len(sites); mask++ {
		cfg := callgraph.NewConfig()
		for i, s := range sites {
			if mask&(1<<i) != 0 {
				cfg.Set(s, true)
			}
		}
		bm, err := c.Build(cfg)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		res, err := interp.Run(bm, "entry", []int64{7}, interp.Options{
			SizeOf:     codegen.SizeOf(bm, codegen.TargetX86),
			CacheBytes: cacheBytes,
		})
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		if got := pricer.Cycles(cfg); got != res.Cycles {
			t.Fatalf("mask %b: pricer %d != interpreter %d", mask, got, res.Cycles)
		}
	}
}

// TestCyclePricerRejectsForeignProfile: a profile from a different module
// must be refused, not silently mispriced.
func TestCyclePricerRejectsForeignProfile(t *testing.T) {
	corpus := cycleCorpus(t)
	a := New(corpus[0].file.Module, codegen.TargetX86)
	if _, err := a.NewCyclePricer(corpus[1].prof, CycleOptions{}); err == nil {
		// Different generated files can coincidentally share function names;
		// only fail the test when the profile names a missing function.
		names := map[string]bool{}
		for _, f := range a.Module().Funcs {
			names[f.Name] = true
		}
		for _, n := range corpus[1].prof.Funcs {
			if !names[n] {
				t.Fatalf("profile names %q, missing from module, but pricer accepted it", n)
			}
		}
	}
}
