package compile

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"optinline/internal/ir"
)

// This file implements the content-addressed per-function compile cache:
// the layer below the string-keyed per-module memo (memo.go). Where the
// memo keys an entry by (module fingerprint, function name, inline-closure
// site list) — an identity valid only within one Compiler — the FnCache
// keys it by the *content* of the compilation: the structural fingerprints
// of the closure's members, the canonicalized site labels inside it, and
// the pipeline version. Two closures with equal content keys produce
// byte-identical post-inline functions and therefore equal sizes, no matter
// which module, corpus file, configuration, or process run they came from.
// That is what makes one cache shareable across configurations (free),
// across corpus files in one inlinebench run (Options.FnCache), and across
// runs (OpenFnCache + Save).
//
// Why equal keys imply equal sizes — the full argument lives with the key
// derivation in memo.go (closureKey); the short form:
//
//   - ir.Function.Fingerprint covers everything inline.Apply and the opt
//     pipeline can observe of a function except site IDs and print names;
//   - codegen sizes are name-independent (a call costs callBase +
//     callArg·args regardless of the callee's name; global ops cost a flat
//     globalOp), so member and global *names* need not match across files —
//     but the *binding* of member names to member bodies does decide what
//     inlines where, and a member's own name is absent from its
//     fingerprint, so the key streams canonical name indices binding each
//     member to the callee references that resolve to it;
//   - site IDs only matter through equality (recursion trails, label
//     lookup), so the key maps them to canonical first-occurrence indices,
//     preserving exactly the equivalence classes;
//   - the key-schema and pipeline versions pin the key derivation and the
//     clone→inline→opt→codegen semantics, and the target byte pins the
//     size model.
//
// The in-memory cache is single-flight, like both memo levels: concurrent
// compilers sharing one FnCache that race on a new key perform one
// compilation. The optional on-disk store is deliberately dumb — fixed-size
// checksummed records, whole-file rewrite on Save — because entries are
// just (128-bit key, size) pairs; corruption of any form degrades to a
// miss, never a wrong size.

// PipelineVersion identifies the semantics of the clone → inline → opt →
// codegen pipeline whose results the per-function cache stores. Bump it
// whenever a pass, the inliner, or a codegen cost model changes measured
// sizes.
const PipelineVersion = 1

// fnKeyVersion identifies the key derivation itself (closureKey in
// memo.go). Bump it whenever the key's input stream changes shape — v2
// added the member-name binding indices — so keys from an older derivation
// can never alias a new one.
const fnKeyVersion = 2

// fnCacheSchema is the string form of the key schema. It is hashed into
// every content key AND written into the persistence header (fnCacheHeader
// below), so bumping either version both invalidates previously cached
// sizes and drops stale on-disk stores wholesale at open — old records
// could never match a new key anyway, and dropping them keeps the store
// from accumulating unreachable entries across version bumps.
var fnCacheSchema = fmt.Sprintf("optinline/fncache/key=%d/pipeline=%d", fnKeyVersion, PipelineVersion)

// fnCacheMagic is the on-disk format name plus format version. Distinct
// from the schema versions above: a format bump changes how records are
// laid out, a schema bump changes what they mean.
const fnCacheMagic = "OPTFNC1\n"

// fnCacheHeader is the full store header: the format magic followed by the
// key schema line. A store whose header does not match byte-for-byte is
// ignored at open (degrading to misses), which is how pipeline and
// key-schema bumps garbage-collect stale stores.
var fnCacheHeader = fnCacheMagic + fnCacheSchema + "\n"

// fnCacheFile is the store's file name inside the cache directory.
const fnCacheFile = "fncache-v1.bin"

// fnRecordSize is the fixed on-disk record: keyHi, keyLo, size, checksum —
// four little-endian 64-bit words.
const fnRecordSize = 32

// FnKey is a 128-bit content key of one function compilation (see
// closureKey in memo.go for the derivation). 64 bits would make accidental
// birthday collisions — which silently return a wrong size — plausible at
// the multi-million-entry scale big corpus runs reach; 128 bits makes them
// ignorable.
type FnKey struct{ Hi, Lo uint64 }

// fnEntry is a single-flight slot. Entries loaded from disk are born ready
// (done == nil); computed entries are ready once done is closed. failed
// marks an entry whose compute panicked and was withdrawn from the map;
// waiters seeing it retry instead of reading a bogus size.
type fnEntry struct {
	done     chan struct{}
	size     int
	fromDisk bool
	failed   bool
}

func (e *fnEntry) ready() bool {
	if e.done == nil {
		return true
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// FnCacheStats reports the content cache's counters.
type FnCacheStats struct {
	Hits     int64 // lookups served by an already-present entry
	Misses   int64 // lookups that had to compile
	DiskHits int64 // subset of Hits served by entries loaded from the cache dir
	Loaded   int64 // persisted entries accepted at open
	Corrupt  int64 // persisted entries (or the header) rejected at open
	Stored   int64 // entries newly computed this run and written by Save
}

func (s FnCacheStats) String() string {
	total := s.Hits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	out := fmt.Sprintf("%d hits / %d misses (%.1f%% hit rate)", s.Hits, s.Misses, pct)
	if s.Loaded > 0 || s.DiskHits > 0 || s.Corrupt > 0 || s.Stored > 0 {
		out += fmt.Sprintf(", disk: %d loaded, %d hits, %d corrupt, %d stored",
			s.Loaded, s.DiskHits, s.Corrupt, s.Stored)
	}
	return out
}

// Add accumulates counters across compilers or harness files.
func (s *FnCacheStats) Add(o FnCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.DiskHits += o.DiskHits
	s.Loaded += o.Loaded
	s.Corrupt += o.Corrupt
	s.Stored += o.Stored
}

// FnCache is a content-addressed, single-flight map from FnKey to encoded
// function size, safe for concurrent use by any number of Compilers. The
// zero value is not usable; construct with NewFnCache or OpenFnCache.
type FnCache struct {
	mu      sync.Mutex
	entries map[FnKey]*fnEntry

	dir string // persistence directory; "" = in-memory only

	hits     atomic.Int64
	misses   atomic.Int64
	diskHits atomic.Int64
	loaded   int64 // written at open, read-only afterwards
	corrupt  int64
	stored   atomic.Int64
}

// NewFnCache returns an empty in-memory cache.
func NewFnCache() *FnCache {
	return &FnCache{entries: make(map[FnKey]*fnEntry)}
}

// OpenFnCache returns a cache backed by dir: previously Saved entries are
// loaded immediately and Save will persist the cache back into dir. A
// missing directory or store file starts empty; the directory is created on
// demand by Save. Corrupt or truncated content degrades entry-by-entry to
// misses — one stderr line summarizes anything rejected — and is never
// returned as a size. An empty dir is equivalent to NewFnCache.
func OpenFnCache(dir string) (*FnCache, error) {
	fc := NewFnCache()
	if dir == "" {
		return fc, nil
	}
	fc.dir = dir
	path := filepath.Join(dir, fnCacheFile)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fc, nil
		}
		return nil, fmt.Errorf("fncache: open %s: %w", path, err)
	}
	fc.load(data, path)
	return fc, nil
}

// load decodes a store file's bytes, accepting every intact record and
// counting (then reporting once) everything else.
func (fc *FnCache) load(data []byte, path string) {
	if len(data) < len(fnCacheHeader) || string(data[:len(fnCacheHeader)]) != fnCacheHeader {
		fc.corrupt = 1
		if len(data) >= len(fnCacheMagic) && string(data[:len(fnCacheMagic)]) == fnCacheMagic {
			fmt.Fprintf(os.Stderr, "fncache: %s: stale key schema or pipeline version; ignoring store\n", path)
		} else {
			fmt.Fprintf(os.Stderr, "fncache: %s: unrecognized header; ignoring store\n", path)
		}
		return
	}
	body := data[len(fnCacheHeader):]
	for len(body) > 0 {
		if len(body) < fnRecordSize {
			fc.corrupt++ // truncated tail record
			break
		}
		rec := body[:fnRecordSize]
		body = body[fnRecordSize:]
		hi := binary.LittleEndian.Uint64(rec[0:8])
		lo := binary.LittleEndian.Uint64(rec[8:16])
		size := int64(binary.LittleEndian.Uint64(rec[16:24]))
		sum := binary.LittleEndian.Uint64(rec[24:32])
		if sum != fnRecordSum(hi, lo, size) || size < 0 || size > InfSize {
			fc.corrupt++
			continue
		}
		key := FnKey{Hi: hi, Lo: lo}
		if _, ok := fc.entries[key]; !ok {
			fc.entries[key] = &fnEntry{size: int(size), fromDisk: true}
			fc.loaded++
		}
	}
	if fc.corrupt > 0 {
		fmt.Fprintf(os.Stderr, "fncache: %s: ignored %d corrupt or truncated entr%s (treated as misses)\n",
			path, fc.corrupt, plural(fc.corrupt, "y", "ies"))
	}
}

func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// fnRecordSum checksums one record's payload words; it guards against
// bit rot and torn writes, not adversaries.
func fnRecordSum(hi, lo uint64, size int64) uint64 {
	h := ir.NewHasher()
	h.Str(fnCacheMagic)
	h.Uint64(hi)
	h.Uint64(lo)
	h.Uint64(uint64(size))
	return h.Sum64()
}

// sizeOf returns the cached size for key, computing it with compute on the
// first request (single-flight: concurrent first requests share one
// compute). hits/misses are the requesting Compiler's counters, so each
// compiler sharing the cache reports its own view.
func (fc *FnCache) sizeOf(key FnKey, hits, misses *atomic.Int64, compute func() int) int {
	for {
		fc.mu.Lock()
		if e, ok := fc.entries[key]; ok {
			fc.mu.Unlock()
			if e.done != nil {
				<-e.done
			}
			if e.failed {
				continue // compute panicked and was withdrawn; retry
			}
			hits.Add(1)
			fc.hits.Add(1)
			if e.fromDisk {
				fc.diskHits.Add(1)
			}
			return e.size
		}
		e := &fnEntry{done: make(chan struct{})}
		fc.entries[key] = e
		fc.mu.Unlock()

		misses.Add(1)
		fc.misses.Add(1)
		// If compute panics, withdraw the poisoned entry and release waiters
		// before the panic unwinds, so other search workers sharing the cache
		// neither block forever on done nor read a bogus size.
		panicked := true
		func() {
			defer func() {
				if panicked {
					fc.mu.Lock()
					delete(fc.entries, key)
					fc.mu.Unlock()
					e.failed = true
					close(e.done)
				}
			}()
			e.size = compute()
			panicked = false
		}()
		close(e.done)
		return e.size
	}
}

// Len returns the number of entries (ready or in flight).
func (fc *FnCache) Len() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return len(fc.entries)
}

// Stats returns the cache's own aggregate counters (across every compiler
// sharing it). Stored reflects the most recent Save.
func (fc *FnCache) Stats() FnCacheStats {
	return FnCacheStats{
		Hits:     fc.hits.Load(),
		Misses:   fc.misses.Load(),
		DiskHits: fc.diskHits.Load(),
		Loaded:   fc.loaded,
		Corrupt:  fc.corrupt,
		Stored:   fc.stored.Load(),
	}
}

// Save persists every ready entry to the cache directory; a cache opened
// without one is untouched. The store is rewritten whole — temp file then
// rename — so a crash mid-save leaves the previous store intact, and a
// corrupt-tailed previous store never gets appended to at a misaligned
// offset. Records are sorted by key, making the file's bytes a pure
// function of its contents (cold and warm runs over the same corpus write
// identical stores).
func (fc *FnCache) Save() error {
	if fc.dir == "" {
		return nil
	}
	fc.mu.Lock()
	keys := make([]FnKey, 0, len(fc.entries))
	for k, e := range fc.entries {
		if e.ready() {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Hi != keys[j].Hi {
			return keys[i].Hi < keys[j].Hi
		}
		return keys[i].Lo < keys[j].Lo
	})
	buf := make([]byte, 0, len(fnCacheHeader)+len(keys)*fnRecordSize)
	buf = append(buf, fnCacheHeader...)
	var fresh int64
	for _, k := range keys {
		e := fc.entries[k]
		if !e.fromDisk {
			fresh++
		}
		var record [fnRecordSize]byte
		binary.LittleEndian.PutUint64(record[0:8], k.Hi)
		binary.LittleEndian.PutUint64(record[8:16], k.Lo)
		binary.LittleEndian.PutUint64(record[16:24], uint64(int64(e.size)))
		binary.LittleEndian.PutUint64(record[24:32], fnRecordSum(k.Hi, k.Lo, int64(e.size)))
		buf = append(buf, record[:]...)
	}
	fc.mu.Unlock()

	if err := os.MkdirAll(fc.dir, 0o755); err != nil {
		return fmt.Errorf("fncache: %w", err)
	}
	path := filepath.Join(fc.dir, fnCacheFile)
	tmp, err := os.CreateTemp(fc.dir, fnCacheFile+".tmp*")
	if err != nil {
		return fmt.Errorf("fncache: %w", err)
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fncache: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fncache: %w", err)
	}
	fc.stored.Store(fresh)
	return nil
}
