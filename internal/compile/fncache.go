package compile

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"optinline/internal/ir"
)

// This file implements the content-addressed per-function compile cache:
// the layer below the string-keyed per-module memo (memo.go). Where the
// memo keys an entry by (module fingerprint, function name, inline-closure
// site list) — an identity valid only within one Compiler — the FnCache
// keys it by the *content* of the compilation: the structural fingerprints
// of the closure's members, the canonicalized site labels inside it, and
// the pipeline version. Two closures with equal content keys produce
// byte-identical post-inline functions and therefore equal sizes, no matter
// which module, corpus file, configuration, or process run they came from.
// That is what makes one cache shareable across configurations (free),
// across corpus files in one inlinebench run (Options.FnCache), across
// runs (OpenFnCache), and across the clients of one long-running inlined
// daemon (internal/server shares a single process-wide cache).
//
// Why equal keys imply equal sizes — the full argument lives with the key
// derivation in memo.go (closureKey); the short form:
//
//   - ir.Function.Fingerprint covers everything inline.Apply and the opt
//     pipeline can observe of a function except site IDs and print names;
//   - codegen sizes are name-independent (a call costs callBase +
//     callArg·args regardless of the callee's name; global ops cost a flat
//     globalOp), so member and global *names* need not match across files —
//     but the *binding* of member names to member bodies does decide what
//     inlines where, and a member's own name is absent from its
//     fingerprint, so the key streams canonical name indices binding each
//     member to the callee references that resolve to it;
//   - site IDs only matter through equality (recursion trails, label
//     lookup), so the key maps them to canonical first-occurrence indices,
//     preserving exactly the equivalence classes;
//   - the key-schema and pipeline versions pin the key derivation and the
//     clone→inline→opt→codegen semantics, and the target byte pins the
//     size model.
//
// The in-memory cache is single-flight, like both memo levels: concurrent
// compilers sharing one FnCache that race on a new key perform one
// compilation. The optional on-disk store is an append-only log of
// fixed-size checksummed records: every newly computed entry is appended
// under a store mutex the moment it is ready (with a periodic fsync), so a
// long-running process persists incrementally instead of rewriting the
// whole file at exit. Records carry their own checksum and the log heals
// its tail at open, so corruption of any form — torn final record, bit
// rot, duplicate keys from a crash-and-reappend cycle — degrades to a
// counted miss (or a counted duplicate), never a wrong size. Compact
// rewrites the log as a sorted, deduplicated canonical store; the daemon
// exposes it offline as `inlined -compact`.
//
// The store assumes a single writing process per directory (the daemon, or
// one batch CLI run); concurrent readers are safe.

// PipelineVersion identifies the semantics of the clone → inline → opt →
// codegen pipeline whose results the per-function cache stores. Bump it
// whenever a pass, the inliner, or a codegen cost model changes measured
// sizes.
const PipelineVersion = 1

// fnKeyVersion identifies the key derivation itself (closureKey in
// memo.go). Bump it whenever the key's input stream changes shape — v2
// added the member-name binding indices — so keys from an older derivation
// can never alias a new one.
const fnKeyVersion = 2

// fnCacheSchema is the string form of the key schema. It is hashed into
// every content key AND written into the persistence header (fnCacheHeader
// below), so bumping either version both invalidates previously cached
// sizes and drops stale on-disk stores wholesale at open — old records
// could never match a new key anyway, and dropping them keeps the store
// from accumulating unreachable entries across version bumps.
var fnCacheSchema = fmt.Sprintf("optinline/fncache/key=%d/pipeline=%d", fnKeyVersion, PipelineVersion)

// fnCacheMagic is the on-disk format name plus format version. Distinct
// from the schema versions above: a format bump changes how records are
// laid out, a schema bump changes what they mean. v2 turned the store from
// a rewrite-at-exit snapshot into an append log (same record layout; what
// changed is that duplicate keys are now legitimate, so readers dedup).
const fnCacheMagic = "OPTFNC2\n"

// fnCacheHeader is the full store header: the format magic followed by the
// key schema line. A store whose header does not match byte-for-byte is
// reset at open (degrading to misses), which is how pipeline and
// key-schema bumps garbage-collect stale stores.
var fnCacheHeader = fnCacheMagic + fnCacheSchema + "\n"

// fnCacheFile is the store's file name inside the cache directory.
const fnCacheFile = "fncache-v2.log"

// fnRecordSize is the fixed on-disk record: keyHi, keyLo, size, checksum —
// four little-endian 64-bit words.
const fnRecordSize = 32

// defaultFsyncEvery is how many appended records may accumulate between
// fsyncs when the opener does not choose; Save and Close always sync.
// A crash loses at most this many freshly computed sizes — they are only
// cache entries, recomputed on the next miss.
const defaultFsyncEvery = 64

// FnKey is a 128-bit content key of one function compilation (see
// closureKey in memo.go for the derivation). 64 bits would make accidental
// birthday collisions — which silently return a wrong size — plausible at
// the multi-million-entry scale big corpus runs reach; 128 bits makes them
// ignorable.
type FnKey struct{ Hi, Lo uint64 }

// fnEntry is a single-flight slot. Entries loaded from disk are born ready
// (done == nil); computed entries are ready once done is closed. failed
// marks an entry whose compute panicked and was withdrawn from the map;
// waiters seeing it retry instead of reading a bogus size. elem is the
// entry's node in the cache's LRU list (nil while in flight: in-flight
// entries are pinned and cannot be evicted).
type fnEntry struct {
	done     chan struct{}
	size     int
	fromDisk bool
	failed   bool
	elem     *list.Element
}

func (e *fnEntry) ready() bool {
	if e.done == nil {
		return true
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// FnCacheStats reports the content cache's counters.
type FnCacheStats struct {
	Hits     int64 // lookups served by an already-present entry
	Misses   int64 // lookups that had to compile
	DiskHits int64 // subset of Hits served by entries loaded from the cache dir
	Loaded   int64 // persisted entries accepted at open
	Corrupt  int64 // persisted entries (or the header) rejected at open
	Dupes    int64 // duplicate-key records skipped at open — crash-replayed appends
	Stored   int64 // entries newly computed this run and appended to the log
	Evicted  int64 // in-memory entries dropped by the LRU bound
	Syncs    int64 // fsyncs issued for the append log
}

func (s FnCacheStats) String() string {
	total := s.Hits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	out := fmt.Sprintf("%d hits / %d misses (%.1f%% hit rate)", s.Hits, s.Misses, pct)
	if s.Loaded > 0 || s.DiskHits > 0 || s.Corrupt > 0 || s.Stored > 0 || s.Dupes > 0 {
		out += fmt.Sprintf(", disk: %d loaded, %d hits, %d corrupt, %d stored",
			s.Loaded, s.DiskHits, s.Corrupt, s.Stored)
		if s.Dupes > 0 {
			out += fmt.Sprintf(", %d dupes", s.Dupes)
		}
	}
	if s.Evicted > 0 {
		out += fmt.Sprintf(", %d evicted", s.Evicted)
	}
	return out
}

// Add accumulates counters across compilers or harness files.
func (s *FnCacheStats) Add(o FnCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.DiskHits += o.DiskHits
	s.Loaded += o.Loaded
	s.Corrupt += o.Corrupt
	s.Dupes += o.Dupes
	s.Stored += o.Stored
	s.Evicted += o.Evicted
	s.Syncs += o.Syncs
}

// FnCacheConfig bounds and tunes a persistent cache; the zero value means
// "in-memory, unbounded" and is what NewFnCache uses.
type FnCacheConfig struct {
	// Dir is the persistence directory; "" keeps the cache in memory only.
	Dir string
	// MaxEntries bounds the number of in-memory entries; 0 is unbounded.
	// When the bound is hit the least-recently-used ready entry is dropped
	// (in-flight computations are pinned). Evicted entries that were ever
	// appended remain in the log until Compact, so re-learning them after
	// a restart is free; within one run they recompute on next use.
	MaxEntries int
	// FsyncEvery fsyncs the append log after this many appended records;
	// 0 selects defaultFsyncEvery, negative disables periodic fsync
	// (Save/Close still sync).
	FsyncEvery int
}

// FnCache is a content-addressed, single-flight map from FnKey to encoded
// function size, safe for concurrent use by any number of Compilers. The
// zero value is not usable; construct with NewFnCache or OpenFnCache.
type FnCache struct {
	mu         sync.Mutex
	entries    map[FnKey]*fnEntry
	lru        *list.List // of FnKey; front = least recently used
	maxEntries int

	// Append-log store. storeMu serializes appends, syncs, and compaction;
	// it is never held together with mu (Compact snapshots under mu first,
	// then writes under storeMu).
	storeMu    sync.Mutex
	dir        string   // persistence directory; "" = in-memory only
	file       *os.File // open append handle; nil if in-memory or failed
	fsyncEvery int
	sinceSync  int
	healNeeded bool // open saw corruption; Save compacts to scrub it

	hits     atomic.Int64
	misses   atomic.Int64
	diskHits atomic.Int64
	loaded   int64 // written at open, read-only afterwards
	corrupt  int64
	dupes    int64
	stored   atomic.Int64
	evicted  atomic.Int64
	syncs    atomic.Int64
}

// NewFnCache returns an empty in-memory cache.
func NewFnCache() *FnCache {
	fc, _ := OpenFnCacheWith(FnCacheConfig{})
	return fc
}

// OpenFnCache returns a cache backed by dir: previously appended entries
// are loaded immediately and newly computed ones are appended back as they
// are produced. Equivalent to OpenFnCacheWith(FnCacheConfig{Dir: dir}).
func OpenFnCache(dir string) (*FnCache, error) {
	return OpenFnCacheWith(FnCacheConfig{Dir: dir})
}

// OpenFnCacheWith opens a cache under cfg. A missing directory or store
// file starts empty (the directory is created on demand). Corrupt or
// truncated content degrades entry-by-entry to misses — one stderr line
// summarizes anything rejected — and is never returned as a size; a torn
// tail (a crash mid-append) is truncated away so subsequent appends land
// on a record boundary. An unusable store file (permissions, bad header on
// a read-only filesystem) degrades to an in-memory cache rather than an
// error: persistence is an optimization, never a correctness requirement.
func OpenFnCacheWith(cfg FnCacheConfig) (*FnCache, error) {
	fc := &FnCache{
		entries:    make(map[FnKey]*fnEntry),
		lru:        list.New(),
		maxEntries: cfg.MaxEntries,
		fsyncEvery: cfg.FsyncEvery,
	}
	if fc.fsyncEvery == 0 {
		fc.fsyncEvery = defaultFsyncEvery
	}
	if cfg.Dir == "" {
		return fc, nil
	}
	fc.dir = cfg.Dir
	if err := os.MkdirAll(fc.dir, 0o755); err != nil {
		return nil, fmt.Errorf("fncache: %w", err)
	}
	path := filepath.Join(fc.dir, fnCacheFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fncache: open %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fncache: read %s: %w", path, err)
	}
	fc.file = f
	keep := fc.load(data, path)
	err = fc.resetLogTo(keep, data)
	if err == nil {
		// Position the handle at the healed end of the log; every later
		// write is an append at a record boundary.
		_, err = fc.file.Seek(0, io.SeekEnd)
	}
	if err != nil {
		// Healing failed (e.g. read-only file); keep what we loaded but
		// stop persisting rather than appending at a broken offset.
		fmt.Fprintf(os.Stderr, "fncache: %s: %v; continuing in-memory\n", path, err)
		fc.file.Close()
		fc.file = nil
	}
	return fc, nil
}

// load decodes a store file's bytes, accepting every intact record and
// counting (then reporting once) everything else. It returns the number of
// leading bytes the on-disk log should be truncated to so appends land on
// a record boundary: the full length when the file is intact, the last
// complete-record boundary when the tail is torn, or 0 when the header is
// unusable and the log must restart.
func (fc *FnCache) load(data []byte, path string) (keep int64) {
	if len(data) == 0 {
		// A fresh (or emptied) store: not corruption, just empty.
		return 0
	}
	if len(data) < len(fnCacheHeader) || string(data[:len(fnCacheHeader)]) != fnCacheHeader {
		fc.corrupt = 1
		if len(data) >= len(fnCacheMagic) && string(data[:len(fnCacheMagic)]) == fnCacheMagic {
			fmt.Fprintf(os.Stderr, "fncache: %s: stale key schema or pipeline version; resetting store\n", path)
		} else {
			fmt.Fprintf(os.Stderr, "fncache: %s: unrecognized header; resetting store\n", path)
		}
		return 0
	}
	body := data[len(fnCacheHeader):]
	keep = int64(len(fnCacheHeader))
	for len(body) > 0 {
		if len(body) < fnRecordSize {
			fc.corrupt++ // torn final record (crash mid-append)
			break
		}
		rec := body[:fnRecordSize]
		body = body[fnRecordSize:]
		keep += fnRecordSize
		hi := binary.LittleEndian.Uint64(rec[0:8])
		lo := binary.LittleEndian.Uint64(rec[8:16])
		size := int64(binary.LittleEndian.Uint64(rec[16:24]))
		sum := binary.LittleEndian.Uint64(rec[24:32])
		if sum != fnRecordSum(hi, lo, size) || size < 0 || size > InfSize {
			fc.corrupt++
			continue
		}
		key := FnKey{Hi: hi, Lo: lo}
		if _, ok := fc.entries[key]; ok {
			// Append logs legitimately repeat keys (crash before the
			// in-memory dedup was rebuilt, recompute after eviction). The
			// records are content-addressed, so duplicates carry the same
			// size; first wins either way.
			fc.dupes++
			continue
		}
		e := &fnEntry{size: int(size), fromDisk: true}
		e.elem = fc.lru.PushBack(key)
		fc.entries[key] = e
		fc.loaded++
		fc.evictOverflowLocked()
	}
	if fc.corrupt > 0 {
		fc.healNeeded = true
		fmt.Fprintf(os.Stderr, "fncache: %s: ignored %d corrupt or truncated entr%s (treated as misses)\n",
			path, fc.corrupt, plural(fc.corrupt, "y", "ies"))
	}
	return keep
}

// resetLogTo makes the on-disk log consistent with what load accepted:
// intact files are left byte-for-byte alone, a torn tail is truncated to
// the last record boundary, and an unusable header restarts the log. data
// is the file image load saw, used to avoid rewriting an already-valid
// header.
func (fc *FnCache) resetLogTo(keep int64, data []byte) error {
	if keep == int64(len(data)) && keep != 0 {
		return nil
	}
	if keep == 0 {
		if err := fc.file.Truncate(0); err != nil {
			return fmt.Errorf("reset: %w", err)
		}
		if _, err := fc.file.WriteAt([]byte(fnCacheHeader), 0); err != nil {
			return fmt.Errorf("reset: %w", err)
		}
		return nil
	}
	if err := fc.file.Truncate(keep); err != nil {
		return fmt.Errorf("truncate torn tail: %w", err)
	}
	return nil
}

func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// fnRecordSum checksums one record's payload words; it guards against
// bit rot and torn writes, not adversaries.
func fnRecordSum(hi, lo uint64, size int64) uint64 {
	h := ir.NewHasher()
	h.Str(fnCacheMagic)
	h.Uint64(hi)
	h.Uint64(lo)
	h.Uint64(uint64(size))
	return h.Sum64()
}

func encodeRecord(dst []byte, key FnKey, size int) {
	binary.LittleEndian.PutUint64(dst[0:8], key.Hi)
	binary.LittleEndian.PutUint64(dst[8:16], key.Lo)
	binary.LittleEndian.PutUint64(dst[16:24], uint64(int64(size)))
	binary.LittleEndian.PutUint64(dst[24:32], fnRecordSum(key.Hi, key.Lo, int64(size)))
}

// appendRecord persists one freshly computed entry at its record boundary,
// fsyncing every fsyncEvery appends. Called outside mu; storeMu serializes
// writers. A write failure disables persistence for the rest of the run
// (reported once) instead of failing the computation that produced the
// size — the cache stays correct in memory.
func (fc *FnCache) appendRecord(key FnKey, size int) {
	fc.storeMu.Lock()
	defer fc.storeMu.Unlock()
	if fc.file == nil {
		return
	}
	var rec [fnRecordSize]byte
	encodeRecord(rec[:], key, size)
	if _, err := fc.file.Write(rec[:]); err != nil {
		fmt.Fprintf(os.Stderr, "fncache: append failed, disabling persistence: %v\n", err)
		fc.file.Close()
		fc.file = nil
		return
	}
	fc.stored.Add(1)
	fc.sinceSync++
	if fc.fsyncEvery > 0 && fc.sinceSync >= fc.fsyncEvery {
		fc.syncLocked()
	}
}

func (fc *FnCache) syncLocked() {
	if fc.file == nil || fc.sinceSync == 0 {
		return
	}
	if err := fc.file.Sync(); err != nil {
		fmt.Fprintf(os.Stderr, "fncache: fsync: %v\n", err)
		return
	}
	fc.sinceSync = 0
	fc.syncs.Add(1)
}

// evictOverflowLocked enforces the LRU bound; the caller holds mu.
// In-flight entries have no LRU node, so only ready entries are evictable.
func (fc *FnCache) evictOverflowLocked() {
	if fc.maxEntries <= 0 {
		return
	}
	for fc.lru.Len() > fc.maxEntries {
		front := fc.lru.Front()
		if front == nil {
			return
		}
		key := front.Value.(FnKey)
		fc.lru.Remove(front)
		delete(fc.entries, key)
		fc.evicted.Add(1)
	}
}

// sizeOf returns the cached size for key, computing it with compute on the
// first request (single-flight: concurrent first requests share one
// compute). hits/misses are the requesting Compiler's counters, so each
// compiler sharing the cache reports its own view.
func (fc *FnCache) sizeOf(key FnKey, hits, misses *atomic.Int64, compute func() int) int {
	for {
		fc.mu.Lock()
		if e, ok := fc.entries[key]; ok {
			if e.elem != nil {
				fc.lru.MoveToBack(e.elem)
			}
			fc.mu.Unlock()
			if e.done != nil {
				<-e.done
			}
			if e.failed {
				continue // compute panicked and was withdrawn; retry
			}
			hits.Add(1)
			fc.hits.Add(1)
			if e.fromDisk {
				fc.diskHits.Add(1)
			}
			return e.size
		}
		e := &fnEntry{done: make(chan struct{})}
		fc.entries[key] = e
		fc.mu.Unlock()

		misses.Add(1)
		fc.misses.Add(1)
		// If compute panics, withdraw the poisoned entry and release waiters
		// before the panic unwinds, so other search workers sharing the cache
		// neither block forever on done nor read a bogus size.
		panicked := true
		func() {
			defer func() {
				if panicked {
					fc.mu.Lock()
					delete(fc.entries, key)
					fc.mu.Unlock()
					e.failed = true
					close(e.done)
				}
			}()
			e.size = compute()
			panicked = false
		}()
		// Persist before publishing: once the entry is ready it is visible
		// to Compact's snapshot, and compaction must never observe a ready
		// entry whose record could land after the compacted log's rename
		// out of order. Appends and compaction share storeMu, so "record
		// written" happens-before "entry ready" keeps the log a superset of
		// the ready set.
		if fc.dir != "" {
			fc.appendRecord(key, e.size)
		}
		fc.mu.Lock()
		// The slot is still ours: in-flight entries have no LRU node, so
		// eviction cannot have removed it, and only the panic path (not
		// taken) withdraws entries. Link it into the LRU as most recent.
		e.elem = fc.lru.PushBack(key)
		fc.evictOverflowLocked()
		fc.mu.Unlock()
		close(e.done)
		return e.size
	}
}

// Len returns the number of entries (ready or in flight).
func (fc *FnCache) Len() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return len(fc.entries)
}

// Stats returns the cache's own aggregate counters (across every compiler
// sharing it).
func (fc *FnCache) Stats() FnCacheStats {
	return FnCacheStats{
		Hits:     fc.hits.Load(),
		Misses:   fc.misses.Load(),
		DiskHits: fc.diskHits.Load(),
		Loaded:   fc.loaded,
		Corrupt:  fc.corrupt,
		Dupes:    fc.dupes,
		Stored:   fc.stored.Load(),
		Evicted:  fc.evicted.Load(),
		Syncs:    fc.syncs.Load(),
	}
}

// Save makes the on-disk log durable: entries are appended incrementally
// as they are computed, so Save only forces the outstanding fsync — and,
// when the open-time load rejected corrupt records, compacts the log so a
// subsequent open is clean again. Kept as the CLIs' end-of-run call; a
// cache opened without a directory is untouched.
func (fc *FnCache) Save() error {
	if fc.dir == "" {
		return nil
	}
	fc.storeMu.Lock()
	heal := fc.healNeeded
	fc.syncLocked()
	fc.storeMu.Unlock()
	if heal {
		return fc.Compact()
	}
	return nil
}

// Close flushes and closes the append log. The cache remains usable in
// memory; further computed entries are simply no longer persisted.
func (fc *FnCache) Close() error {
	if err := fc.Save(); err != nil {
		return err
	}
	fc.storeMu.Lock()
	defer fc.storeMu.Unlock()
	if fc.file != nil {
		err := fc.file.Close()
		fc.file = nil
		if err != nil {
			return fmt.Errorf("fncache: close: %w", err)
		}
	}
	return nil
}

// Compact rewrites the append log as its canonical form: the header plus
// every *currently in-memory* ready entry, deduplicated and sorted by key
// — a pure function of the cache contents, so logs compacted from the same
// entries are byte-identical. Duplicate records accumulated by append
// replays, records rejected as corrupt, and entries dropped by the LRU
// bound are all scrubbed; compaction is therefore also how the on-disk
// store is size-bounded. The rewrite goes through a temp file and rename,
// so a crash mid-compact leaves the previous log intact. Offline form:
// `inlined -compact -cache-dir d`.
func (fc *FnCache) Compact() error {
	if fc.dir == "" {
		return nil
	}
	type kv struct {
		k FnKey
		s int
	}
	fc.mu.Lock()
	snapshot := make([]kv, 0, len(fc.entries))
	for k, e := range fc.entries {
		if e.ready() && !e.failed {
			snapshot = append(snapshot, kv{k, e.size})
		}
	}
	fc.mu.Unlock()
	sort.Slice(snapshot, func(i, j int) bool {
		if snapshot[i].k.Hi != snapshot[j].k.Hi {
			return snapshot[i].k.Hi < snapshot[j].k.Hi
		}
		return snapshot[i].k.Lo < snapshot[j].k.Lo
	})
	buf := make([]byte, 0, len(fnCacheHeader)+len(snapshot)*fnRecordSize)
	buf = append(buf, fnCacheHeader...)
	for _, e := range snapshot {
		var rec [fnRecordSize]byte
		encodeRecord(rec[:], e.k, e.s)
		buf = append(buf, rec[:]...)
	}

	fc.storeMu.Lock()
	defer fc.storeMu.Unlock()
	if err := os.MkdirAll(fc.dir, 0o755); err != nil {
		return fmt.Errorf("fncache: %w", err)
	}
	path := filepath.Join(fc.dir, fnCacheFile)
	tmp, err := os.CreateTemp(fc.dir, fnCacheFile+".tmp*")
	if err != nil {
		return fmt.Errorf("fncache: %w", err)
	}
	_, werr := tmp.Write(buf)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fncache: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fncache: %w", err)
	}
	// Swap the append handle onto the new log so later appends follow it.
	if fc.file != nil {
		fc.file.Close()
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		fc.file = nil
		return fmt.Errorf("fncache: reopen after compact: %w", err)
	}
	fc.file = f
	fc.sinceSync = 0
	fc.healNeeded = false
	return nil
}
