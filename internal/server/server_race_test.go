package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// raceRequest is one prepared request; Payload is marshaled once so both
// the reference and the concurrent runs send identical bytes.
type raceRequest struct {
	desc    string
	path    string
	payload []byte
}

// buildRaceCorpus prepares the mixed /compile+/search+/tune request set
// over the example corpus, every inline mode represented.
func buildRaceCorpus(t *testing.T) []raceRequest {
	t.Helper()
	var reqs []raceRequest
	addJSON := func(desc, path string, body any) {
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal %s: %v", desc, err)
		}
		reqs = append(reqs, raceRequest{desc: desc, path: path, payload: payload})
	}
	for _, f := range exampleSources(t) {
		for _, mode := range []string{"none", "os", "tune", "optimal"} {
			addJSON(f.name+" compile "+mode, "/compile", CompileRequest{
				Name: f.name, Source: f.src, Inline: mode, Rounds: 2, MaxSpace: 1 << 16, Jobs: 2,
			})
		}
		addJSON(f.name+" search", "/search", SearchRequest{
			Name: f.name, Source: f.src, MaxSpace: 1 << 16, Jobs: 2,
		})
		addJSON(f.name+" tune", "/tune", TuneRequest{
			Name: f.name, Source: f.src, Init: "clean", Rounds: 2,
		})
		addJSON(f.name+" analyze", "/analyze", AnalyzeRequest{
			Name: f.name, Source: f.src, Jobs: 2,
		})
	}
	return reqs
}

func doRace(t *testing.T, url string, rr raceRequest) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+rr.path, "application/json", bytes.NewReader(rr.payload))
	if err != nil {
		t.Fatalf("%s: %v", rr.desc, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: read body: %v", rr.desc, err)
	}
	return resp.StatusCode, data
}

// TestServerConcurrentByteIdentical is the HTTP half of the concurrency
// tier: 16 client goroutines fire overlapping /compile, /search and /tune
// requests (plus /stats probes) at one daemon sharing a single FnCache and
// compiler pool, and every response body must be byte-identical to the
// one a single-threaded server produced for the same request bytes. This
// is exactly the determinism contract of types.go: work responses are
// pure functions of the request, no matter how caches warm up underneath.
func TestServerConcurrentByteIdentical(t *testing.T) {
	corpus := buildRaceCorpus(t)

	// Reference: a fresh single-threaded server, each request once, in order.
	want := make(map[string][]byte, len(corpus))
	_, ref := newTestServer(t, Config{Jobs: 1})
	for _, rr := range corpus {
		status, body := doRace(t, ref.URL, rr)
		if status != http.StatusOK {
			t.Fatalf("reference %s: status %d: %s", rr.desc, status, body)
		}
		want[rr.desc] = body
	}

	// Hot server: 16 clients, each walking the corpus from a different
	// offset so distinct requests overlap, several repeats so the same
	// request also races itself.
	const clients = 16
	const repeats = 3
	_, hot := newTestServer(t, Config{Jobs: 4, MaxQueue: clients * len(corpus)})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < repeats; rep++ {
				for i := range corpus {
					rr := corpus[(i+c*7)%len(corpus)]
					status, body := doRace(t, hot.URL, rr)
					if status != http.StatusOK {
						errs <- fmt.Errorf("%s: status %d: %s", rr.desc, status, body)
						return
					}
					if !bytes.Equal(body, want[rr.desc]) {
						errs <- fmt.Errorf("%s: concurrent response diverged\n got: %s\nwant: %s",
							rr.desc, body, want[rr.desc])
						return
					}
					// Interleave observability traffic: must always answer.
					if i%5 == 0 {
						st := getStats(t, hot.URL)
						if st.Queue.Capacity != 4 {
							errs <- fmt.Errorf("stats under load: capacity %d, want 4", st.Queue.Capacity)
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Post-load bookkeeping must balance exactly.
	st := getStats(t, hot.URL)
	if st.Queue.Busy != 0 || st.Queue.Queued != 0 {
		t.Errorf("after load: busy=%d queued=%d, want 0/0", st.Queue.Busy, st.Queue.Queued)
	}
	wantGranted := int64(clients * repeats * len(corpus))
	if st.Queue.Granted != wantGranted {
		t.Errorf("queue.granted = %d, want %d", st.Queue.Granted, wantGranted)
	}
}

// TestQueueAcquireReleaseRace hammers the weighted semaphore directly:
// mixed widths, cancellations, and stats reads from 16 goroutines, then
// checks that every token came home.
func TestQueueAcquireReleaseRace(t *testing.T) {
	q := newJobQueue(4, 64)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n := 1 + (w+i)%4
				if err := q.Acquire(t.Context(), n); err != nil {
					continue
				}
				if i%3 == 0 {
					q.Stats()
				}
				q.Release(n)
			}
		}(w)
	}
	wg.Wait()
	st := q.Stats()
	if st.Busy != 0 || st.Queued != 0 {
		t.Fatalf("after race: busy=%d queued=%d, want 0/0", st.Busy, st.Queued)
	}
}
