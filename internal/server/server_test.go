package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/search"
	"optinline/internal/source"
)

type exampleFile struct {
	name string
	src  string
}

// exampleSources loads the repo's example MinC corpus (the same files the
// CLI smoke tests use), sorted by name for reproducible request orders.
func exampleSources(t testing.TB) []exampleFile {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "minc")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read examples dir: %v", err)
	}
	var files []exampleFile
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".minc") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		files = append(files, exampleFile{name: e.Name(), src: string(data)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	if len(files) == 0 {
		t.Fatal("no example sources found")
	}
	return files
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON request and returns status and raw body.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, data
}

// libCompiler builds a fresh standalone compiler for reference results.
func libCompiler(t *testing.T, f exampleFile) *compile.Compiler {
	t.Helper()
	mod, err := source.FromBytes(f.name, []byte(f.src))
	if err != nil {
		t.Fatalf("parse %s: %v", f.name, err)
	}
	return compile.NewWithOptions(mod, codegen.TargetX86, compile.Options{FnCache: compile.NewFnCache()})
}

// TestCompileEndpointModes checks every inline mode against direct library
// computation on the example corpus.
func TestCompileEndpointModes(t *testing.T) {
	files := exampleSources(t)
	_, ts := newTestServer(t, Config{Jobs: 2})
	for _, f := range files {
		comp := libCompiler(t, f)
		g := comp.Graph()
		osCfg := heuristic.OsConfig(comp.Module(), g)
		optRes, ok := search.Optimal(comp, search.Options{Workers: 1, MaxSpace: 1 << 16})
		if !ok {
			t.Fatalf("%s: example exceeds search space", f.name)
		}
		tuneBest, _, _ := autotune.Combined(comp, osCfg, autotune.Options{Rounds: 4, Workers: 1})
		want := map[string]int{
			"none":    comp.Size(callgraph.NewConfig()),
			"os":      comp.Size(osCfg),
			"tune":    tuneBest.Size,
			"optimal": optRes.Size,
		}
		for mode, wantSize := range want {
			status, body := post(t, ts.URL+"/compile", CompileRequest{
				Name: f.name, Source: f.src, Inline: mode, MaxSpace: 1 << 16,
			})
			if status != http.StatusOK {
				t.Fatalf("%s inline=%s: status %d: %s", f.name, mode, status, body)
			}
			var resp CompileResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatalf("%s inline=%s: bad JSON: %v", f.name, mode, err)
			}
			if resp.Size != wantSize {
				t.Errorf("%s inline=%s: size %d, library says %d", f.name, mode, resp.Size, wantSize)
			}
			if resp.InlinableSites != len(g.Edges) {
				t.Errorf("%s inline=%s: inlinableSites %d, want %d", f.name, mode, resp.InlinableSites, len(g.Edges))
			}
		}
	}
}

// TestSearchEndpointMatchesLibrary compares /search's full report with a
// direct inlinesearch-style run.
func TestSearchEndpointMatchesLibrary(t *testing.T) {
	files := exampleSources(t)
	_, ts := newTestServer(t, Config{Jobs: 2})
	for _, f := range files {
		comp := libCompiler(t, f)
		g := comp.Graph()
		osCfg := heuristic.OsConfig(comp.Module(), g)
		res, ok := search.Optimal(comp, search.Options{Workers: 1, MaxSpace: 1 << 16})
		if !ok {
			t.Fatalf("%s: example exceeds search space", f.name)
		}
		status, body := post(t, ts.URL+"/search", SearchRequest{Name: f.name, Source: f.src, MaxSpace: 1 << 16})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", f.name, status, body)
		}
		var resp SearchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s: bad JSON: %v", f.name, err)
		}
		if !resp.Searched {
			t.Fatalf("%s: searched=false, want true", f.name)
		}
		if resp.NoInlineSize != comp.Size(callgraph.NewConfig()) ||
			resp.HeuristicSize != comp.Size(osCfg) ||
			resp.OptimalSize != res.Size {
			t.Errorf("%s: sizes (%d,%d,%d) disagree with library (%d,%d,%d)", f.name,
				resp.NoInlineSize, resp.HeuristicSize, resp.OptimalSize,
				comp.Size(callgraph.NewConfig()), comp.Size(osCfg), res.Size)
		}
		if resp.ConfigKey != res.Config.Key() {
			t.Errorf("%s: configKey %q, library %q", f.name, resp.ConfigKey, res.Config.Key())
		}
		if want := callgraph.Agreement(g.Sites(), res.Config, osCfg); resp.Agreement != want {
			t.Errorf("%s: agreement %v, library %v", f.name, resp.Agreement, want)
		}
		if resp.SpaceSize != res.SpaceSize {
			t.Errorf("%s: spaceSize %d, library %d", f.name, resp.SpaceSize, res.SpaceSize)
		}
	}
}

// TestTuneEndpointMatchesLibrary compares /tune's round trace with a direct
// autotune session.
func TestTuneEndpointMatchesLibrary(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 2})
	comp := libCompiler(t, f)
	osCfg := heuristic.OsConfig(comp.Module(), comp.Graph())
	want := autotune.Tune(comp, osCfg, autotune.Options{Rounds: 3, Workers: 1})

	status, body := post(t, ts.URL+"/tune", TuneRequest{Name: f.name, Source: f.src, Init: "os", Rounds: 3})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp TuneResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.InitSize != want.InitSize || resp.BestSize != want.Size {
		t.Errorf("sizes (%d,%d), library (%d,%d)", resp.InitSize, resp.BestSize, want.InitSize, want.Size)
	}
	if resp.ConfigKey != want.Config.Key() {
		t.Errorf("configKey %q, library %q", resp.ConfigKey, want.Config.Key())
	}
	if len(resp.Rounds) != len(want.Rounds) {
		t.Fatalf("%d rounds, library %d", len(resp.Rounds), len(want.Rounds))
	}
	for i, rt := range want.Rounds {
		got := resp.Rounds[i]
		if got.Round != rt.Round || got.Size != rt.Size || got.Inlined != rt.Inlined ||
			got.NotInlined != rt.NotInlined || got.Toggles != rt.Toggles {
			t.Errorf("round %d: %+v, library %+v", i, got, rt)
		}
	}
}

// TestErrorPaths walks the rejection matrix: malformed bodies, unknown
// enums, unparseable sources, over-budget optimal requests.
func TestErrorPaths(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 1})

	raw := func(path, payload string) (int, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	cases := []struct {
		desc    string
		path    string
		payload string
		want    int
	}{
		{"malformed JSON", "/compile", `{"name":`, http.StatusBadRequest},
		{"unknown field", "/compile", `{"name":"x.minc","source":"func f(){return 1;}","bogus":1}`, http.StatusBadRequest},
		{"missing source", "/compile", `{"name":"x.minc"}`, http.StatusBadRequest},
		{"unknown target", "/compile", `{"name":"x.minc","source":"x","target":"arm"}`, http.StatusBadRequest},
		{"unknown inline mode", "/compile", fmt.Sprintf(`{"name":%q,"source":%q,"inline":"fast"}`, f.name, f.src), http.StatusBadRequest},
		{"parse failure", "/compile", `{"name":"x.ir","source":"garbage"}`, http.StatusUnprocessableEntity},
		{"optimal over budget", "/compile", fmt.Sprintf(`{"name":%q,"source":%q,"inline":"optimal","maxSpace":1}`, f.name, f.src), http.StatusUnprocessableEntity},
		{"tune bad init", "/tune", fmt.Sprintf(`{"name":%q,"source":%q,"init":"hot"}`, f.name, f.src), http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := raw(tc.path, tc.payload)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.desc, status, tc.want, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not ErrorResponse JSON: %s", tc.desc, body)
		}
	}

	// /search over budget is NOT an error: it reports searched=false.
	status, body := raw("/search", fmt.Sprintf(`{"name":%q,"source":%q,"maxSpace":1}`, f.name, f.src))
	if status != http.StatusOK {
		t.Fatalf("search over budget: status %d: %s", status, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if sr.Searched || sr.SpaceSize <= 1 {
		t.Errorf("over-budget search: searched=%v spaceSize=%d, want false and >1", sr.Searched, sr.SpaceSize)
	}
}

// TestQueueFullRejects drives the daemon into overload — one token, no
// waiting allowed — and checks the fast 503.
func TestQueueFullRejects(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 1, MaxQueue: -1, AllowDelay: true})

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, body := post(t, ts.URL+"/compile", CompileRequest{
			Name: f.name, Source: f.src, Inline: "none", DelayMs: 2000,
		})
		if status != http.StatusOK {
			t.Errorf("blocking request: status %d: %s", status, body)
		}
		close(release)
	}()

	// Wait until the slow request holds the only token.
	waitFor(t, ts.URL, func(st StatsResponse) bool { return st.Queue.Busy == 1 })

	status, body := post(t, ts.URL+"/compile", CompileRequest{Name: f.name, Source: f.src, Inline: "none"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("overload request: status %d, want 503 (%s)", status, body)
	}
	<-release
	wg.Wait()

	// After the token frees up the same request succeeds.
	status, body = post(t, ts.URL+"/compile", CompileRequest{Name: f.name, Source: f.src, Inline: "none"})
	if status != http.StatusOK {
		t.Fatalf("post-overload request: status %d: %s", status, body)
	}
	st := getStats(t, ts.URL)
	if st.Queue.Rejected != 1 {
		t.Errorf("queue.rejected = %d, want 1", st.Queue.Rejected)
	}
	if st.Requests["compile"].Busy != 1 {
		t.Errorf("compile.busy = %d, want 1", st.Requests["compile"].Busy)
	}
}

// TestRequestTimeoutAndCancellation exercises both context exits: the
// server deadline firing in the delay phase (504 to the client) and a
// client disconnect cancelling a *queued* request (the waiter is removed
// and counted, and its tokens are never granted).
func TestRequestTimeoutAndCancellation(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 1, MaxQueue: 4, RequestTimeout: 400 * time.Millisecond, AllowDelay: true})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The delay outlives the server deadline: this request holds the
		// only token until its 504, then releases it.
		status, body := post(t, ts.URL+"/compile", CompileRequest{Name: f.name, Source: f.src, DelayMs: 5000})
		if status != http.StatusGatewayTimeout {
			t.Errorf("delay-phase request: status %d, want 504 (%s)", status, body)
		}
	}()
	waitFor(t, ts.URL, func(st StatsResponse) bool { return st.Queue.Busy == 1 })

	// A second request queues behind the held token; its client hangs up
	// before the token frees, so the server abandons the wait.
	payload, _ := json.Marshal(CompileRequest{Name: f.name, Source: f.src, Inline: "none"})
	client := &http.Client{Timeout: 100 * time.Millisecond}
	if _, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(payload)); err == nil {
		t.Fatal("queued request with hung-up client unexpectedly succeeded")
	}
	wg.Wait()

	waitFor(t, ts.URL, func(st StatsResponse) bool {
		return st.Requests["compile"].Timeouts == 2 && st.Queue.Busy == 0 && st.Queue.Queued == 0
	})
	// The pool must be whole again: a full-width request still fits.
	status, body := post(t, ts.URL+"/compile", CompileRequest{Name: f.name, Source: f.src, Inline: "none", Jobs: 1})
	if status != http.StatusOK {
		t.Fatalf("post-cancellation request: status %d: %s", status, body)
	}
}

// TestDrainSemantics checks the two-phase shutdown: in-flight work
// finishes; new work and /healthz answer 503, Drain returns once idle.
func TestDrainSemantics(t *testing.T) {
	f := exampleSources(t)[0]
	s, ts := newTestServer(t, Config{Jobs: 2, AllowDelay: true})

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		status, body := post(t, ts.URL+"/compile", CompileRequest{
			Name: f.name, Source: f.src, Inline: "none", DelayMs: 800,
		})
		inflight <- result{status, body}
	}()
	waitFor(t, ts.URL, func(st StatsResponse) bool { return st.Queue.Busy == 1 })

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()

	// Drain has begun (flag flips before the wait); poll until visible.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// While draining: health checks fail so load balancers rotate us out...
	hstatus := getStatus(t, ts.URL+"/healthz")
	if hstatus != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", hstatus)
	}
	// ...new work is refused...
	status, body := post(t, ts.URL+"/compile", CompileRequest{Name: f.name, Source: f.src, Inline: "none"})
	if status != http.StatusServiceUnavailable {
		t.Errorf("new work during drain: status %d, want 503 (%s)", status, body)
	}
	// ...but the in-flight request completes normally.
	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", r.status, r.body)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// /stats still answers after the drain (observability survives).
	if st := getStats(t, ts.URL); !st.Draining {
		t.Error("stats after drain: draining=false, want true")
	}
}

// TestStatsConsistency replays a small batch and cross-checks the counters.
func TestStatsConsistency(t *testing.T) {
	files := exampleSources(t)
	_, ts := newTestServer(t, Config{Jobs: 2})
	const repeats = 3
	n := 0
	for i := 0; i < repeats; i++ {
		for _, f := range files {
			status, body := post(t, ts.URL+"/compile", CompileRequest{Name: f.name, Source: f.src, Inline: "os"})
			if status != http.StatusOK {
				t.Fatalf("%s: status %d: %s", f.name, status, body)
			}
			n++
		}
	}
	st := getStats(t, ts.URL)
	if got := st.Requests["compile"].Count; got != int64(n) {
		t.Errorf("compile.count = %d, want %d", got, n)
	}
	if st.Queue.Granted != int64(n) {
		t.Errorf("queue.granted = %d, want %d", st.Queue.Granted, n)
	}
	if st.Compilers.Built != int64(len(files)) {
		t.Errorf("compilers.built = %d, want %d (one per distinct module)", st.Compilers.Built, len(files))
	}
	if st.Compilers.Hits != int64(n-len(files)) {
		t.Errorf("compilers.hits = %d, want %d", st.Compilers.Hits, n-len(files))
	}
	if st.FnCache.Entries == 0 || st.FnCache.Misses == 0 {
		t.Errorf("fnCache stats look empty: %+v", st.FnCache)
	}
	if st.Queue.Busy != 0 || st.Queue.Queued != 0 {
		t.Errorf("idle server reports busy=%d queued=%d", st.Queue.Busy, st.Queue.Queued)
	}
	if st.Draining {
		t.Error("draining=true on a live server")
	}
}

// TestCompilerPoolEviction bounds the pool at one compiler and checks LRU
// turnover plus monotone retired aggregates.
func TestCompilerPoolEviction(t *testing.T) {
	files := exampleSources(t)
	if len(files) < 2 {
		t.Skip("need two example files")
	}
	_, ts := newTestServer(t, Config{Jobs: 1, MaxCompilers: 1})
	for i := 0; i < 2; i++ {
		for _, f := range files[:2] {
			status, body := post(t, ts.URL+"/compile", CompileRequest{Name: f.name, Source: f.src, Inline: "os"})
			if status != http.StatusOK {
				t.Fatalf("%s: status %d: %s", f.name, status, body)
			}
		}
	}
	st := getStats(t, ts.URL)
	if st.Compilers.Live != 1 {
		t.Errorf("compilers.live = %d, want 1", st.Compilers.Live)
	}
	if st.Compilers.Built != 4 {
		t.Errorf("compilers.built = %d, want 4 (alternation defeats an LRU of one)", st.Compilers.Built)
	}
	if st.Compilers.Evicted != 3 {
		t.Errorf("compilers.evicted = %d, want 3", st.Compilers.Evicted)
	}
	// Retired counters keep evicted compilers' work visible.
	if st.Evaluations == 0 || st.ConfigCache.Misses == 0 {
		t.Errorf("aggregates dropped retired compilers: evals=%d configCache=%+v", st.Evaluations, st.ConfigCache)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func getStats(t *testing.T, base string) StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return st
}

// waitFor polls /stats until cond holds (or fails the test after 5s).
func waitFor(t *testing.T, base string, cond func(StatsResponse) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cond(getStats(t, base)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAnalyzeEndpoint pins the /analyze contract: a deterministic body
// (byte-identical across worker budgets and across warm/cold/disabled
// summary caches) carrying the feature schema, per-function summaries in
// module order, sorted findings, and one feature vector per site.
func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	f := exampleSources(t)[0]

	var first []byte
	for _, jobs := range []int{1, 2, 8} {
		status, body := post(t, ts.URL+"/analyze", AnalyzeRequest{Name: f.name, Source: f.src, Jobs: jobs})
		if status != http.StatusOK {
			t.Fatalf("jobs=%d: status %d: %s", jobs, status, body)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(body, first) {
			t.Errorf("jobs=%d response differs from jobs=1", jobs)
		}
	}

	// Warm rerun against the same (now populated) summary cache.
	if _, warm := post(t, ts.URL+"/analyze", AnalyzeRequest{Name: f.name, Source: f.src}); !bytes.Equal(warm, first) {
		t.Error("warm summary-cache rerun changed the response body")
	}

	// Scratch oracle: a daemon with the summary cache disabled must
	// produce the same bytes.
	_, scratch := newTestServer(t, Config{DisableSummaryCache: true})
	if _, body := post(t, scratch.URL+"/analyze", AnalyzeRequest{Name: f.name, Source: f.src}); !bytes.Equal(body, first) {
		t.Error("DisableSummaryCache response differs from the cached daemon's")
	}

	var resp AnalyzeResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.SchemaVersion == 0 || len(resp.FeatureNames) == 0 {
		t.Errorf("schemaVersion=%d featureNames=%d", resp.SchemaVersion, len(resp.FeatureNames))
	}
	if resp.Findings == nil {
		t.Error("findings must be an array, never null")
	}
	var funcs []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(resp.Functions, &funcs); err != nil || funcs == nil {
		t.Fatalf("functions is not a summary array: %v", err)
	}
	for i, site := range resp.Sites {
		if got, want := len(site.Features), len(resp.FeatureNames); got != want {
			t.Fatalf("site %d: %d features, want %d", site.Site, got, want)
		}
		if i > 0 && resp.Sites[i-1].Site >= site.Site {
			t.Errorf("sites not sorted: %d then %d", resp.Sites[i-1].Site, site.Site)
		}
		if site.Caller == "" || site.Callee == "" {
			t.Errorf("site %d missing caller/callee", site.Site)
		}
	}

	// Error paths.
	if status, _ := post(t, ts.URL+"/analyze", AnalyzeRequest{Name: f.name}); status != http.StatusBadRequest {
		t.Errorf("missing source: status %d, want 400", status)
	}
	if status, _ := post(t, ts.URL+"/analyze", AnalyzeRequest{Name: f.name, Source: f.src, Target: "mips"}); status != http.StatusBadRequest {
		t.Errorf("bad target: status %d, want 400", status)
	}
	if status, _ := post(t, ts.URL+"/analyze", AnalyzeRequest{Name: "x.minc", Source: "func {"}); status != http.StatusUnprocessableEntity {
		t.Errorf("parse error: status %d, want 422", status)
	}
}

// TestAnalyzeStatsCounters: repeated /analyze of one module must hit the
// summary cache, and /stats reports the counters.
func TestAnalyzeStatsCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	f := exampleSources(t)[0]
	for i := 0; i < 3; i++ {
		if status, body := post(t, ts.URL+"/analyze", AnalyzeRequest{Name: f.name, Source: f.src}); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
	}
	st := getStats(t, ts.URL)
	if st.SummaryCache.Entries == 0 || st.SummaryCache.Misses == 0 {
		t.Errorf("summary cache never filled: %+v", st.SummaryCache)
	}
	if st.SummaryCache.Hits == 0 {
		t.Errorf("warm /analyze reruns produced no summary-cache hits: %+v", st.SummaryCache)
	}
	if got := st.Requests["analyze"].Count; got != 3 {
		t.Errorf("analyze.count = %d, want 3", got)
	}

	// Disabled cache reports all-zero counters.
	_, scratch := newTestServer(t, Config{DisableSummaryCache: true})
	post(t, scratch.URL+"/analyze", AnalyzeRequest{Name: f.name, Source: f.src})
	if st := getStats(t, scratch.URL); st.SummaryCache != (SummaryCacheCounters{}) {
		t.Errorf("disabled summary cache reports nonzero counters: %+v", st.SummaryCache)
	}
}
