package server

import (
	"errors"
	"net/http"
	"sync"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/link"
	"optinline/internal/source"
)

// The /link endpoints expose incremental re-link sessions: POST /link
// resolves a multi-unit plan once, then /link/{id}/patch swaps one unit's
// contents and /link/{id}/search|tune answer from the session — re-solving
// only components whose content key changed, replaying the rest from the
// process-wide result cache shared by every session. Responses stay pure
// functions of the session contents (the concurrency tier byte-compares
// them); replay and cache counters are on GET /stats.

// linkSession is one registered re-link session. link.Session serializes
// its own methods, so concurrent requests to one id are safe (their
// interleaving is the client's choice).
type linkSession struct {
	id     string
	target codegen.Target
	sess   *link.Session
}

// linkRegistry is the FIFO-bounded id → session table.
type linkRegistry struct {
	mu       sync.Mutex
	sessions map[string]*linkSession
	order    []string // insertion order; exact (entries removed on delete/replace)
	created  int64
	replaced int64
	evicted  int64
	retired  link.RelinkStats
}

func addRelink(a, b link.RelinkStats) link.RelinkStats {
	a.Patches += b.Patches
	a.PlanReuses += b.PlanReuses
	a.PlanRebuilds += b.PlanRebuilds
	a.Searches += b.Searches
	a.Tunes += b.Tunes
	return a
}

func (reg *linkRegistry) removeOrderLocked(id string) {
	for i, o := range reg.order {
		if o == id {
			reg.order = append(reg.order[:i], reg.order[i+1:]...)
			return
		}
	}
}

// put registers a session, replacing any existing session with the same id
// (its counters are folded into the retired aggregate) and evicting the
// oldest sessions beyond the bound.
func (reg *linkRegistry) put(ls *linkSession, bound int) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if old, ok := reg.sessions[ls.id]; ok {
		reg.retired = addRelink(reg.retired, old.sess.Stats())
		reg.replaced++
		reg.removeOrderLocked(ls.id)
	}
	reg.sessions[ls.id] = ls
	reg.order = append(reg.order, ls.id)
	reg.created++
	for len(reg.sessions) > bound && len(reg.order) > 0 {
		victim := reg.order[0]
		reg.order = reg.order[1:]
		if old, ok := reg.sessions[victim]; ok {
			reg.retired = addRelink(reg.retired, old.sess.Stats())
			delete(reg.sessions, victim)
			reg.evicted++
		}
	}
}

func (reg *linkRegistry) get(id string) *linkSession {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.sessions[id]
}

func (reg *linkRegistry) remove(id string) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	ls, ok := reg.sessions[id]
	if !ok {
		return false
	}
	reg.retired = addRelink(reg.retired, ls.sess.Stats())
	delete(reg.sessions, id)
	reg.removeOrderLocked(id)
	return true
}

// stats aggregates the registry counters and the RelinkStats of every
// session ever created (live + retired).
func (reg *linkRegistry) stats() LinkSessionPoolStats {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	rel := reg.retired
	for _, ls := range reg.sessions {
		rel = addRelink(rel, ls.sess.Stats())
	}
	return LinkSessionPoolStats{
		Live:     len(reg.sessions),
		Created:  reg.created,
		Replaced: reg.replaced,
		Evicted:  reg.evicted,

		Patches:      rel.Patches,
		PlanReuses:   rel.PlanReuses,
		PlanRebuilds: rel.PlanRebuilds,
		Searches:     rel.Searches,
		Tunes:        rel.Tunes,
	}
}

func parseDupPolicy(name string) (link.DupPolicy, bool) {
	switch name {
	case "", "error":
		return link.DupExportedError, true
	case "rename":
		return link.DupExportedRename, true
	}
	return link.DupExportedError, false
}

func planSummary(p *link.Plan) LinkPlanSummary {
	return LinkPlanSummary{
		TUs:           len(p.TUs),
		Functions:     len(p.Funcs),
		Sites:         len(p.Edges),
		CrossTU:       p.CrossTU,
		Renamed:       p.Renamed,
		ExternalCalls: p.ExternalCalls,
		Components:    len(p.Components),
	}
}

// parseUnit validates and parses one unit. The bool reports success; on
// failure the response has been written.
func (s *Server) parseUnit(w http.ResponseWriter, ep *endpointCounters, u LinkUnit) (link.TU, bool) {
	if u.Name == "" || u.Source == "" {
		s.fail(w, ep, http.StatusBadRequest, "unit name and source are required")
		return link.TU{}, false
	}
	mod, err := source.FromBytes(u.Name, []byte(u.Source))
	if err != nil {
		s.fail(w, ep, http.StatusUnprocessableEntity, "parse %s: %v", u.Name, err)
		return link.TU{}, false
	}
	return link.ModuleTU(u.Name, mod), true
}

func (s *Server) handleLinkCreate(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("link")
	ep.count.Add(1)
	var req LinkCreateRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	target, tok := parseTarget(req.Target)
	if !tok {
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown target %q", req.Target)
		return
	}
	dup, dok := parseDupPolicy(req.DupPolicy)
	if !dok {
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown dupPolicy %q (want error or rename)", req.DupPolicy)
		return
	}
	if req.ID == "" {
		s.fail(w, wr.ep, http.StatusBadRequest, "id is required")
		return
	}
	if len(req.Units) == 0 {
		s.fail(w, wr.ep, http.StatusBadRequest, "units are required")
		return
	}
	seen := make(map[string]bool, len(req.Units))
	tus := make([]link.TU, 0, len(req.Units))
	for _, u := range req.Units {
		if seen[u.Name] {
			s.fail(w, wr.ep, http.StatusBadRequest, "duplicate unit name %q", u.Name)
			return
		}
		seen[u.Name] = true
		tu, ok := s.parseUnit(w, wr.ep, u)
		if !ok {
			return
		}
		tus = append(tus, tu)
	}
	sess, err := link.NewSession(tus, link.SessionOptions{
		Link:          link.Options{DupExported: dup},
		Results:       s.relinkCache,
		NoResultCache: s.relinkCache == nil,
	})
	if err != nil {
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.linkReg.put(&linkSession{id: req.ID, target: target, sess: sess}, s.cfg.MaxLinkSessions)
	writeJSON(w, http.StatusOK, LinkCreateResponse{
		ID:     req.ID,
		Target: targetName(target),
		Plan:   planSummary(sess.Plan()),
	})
}

func (s *Server) handleLinkPatch(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("link.patch")
	ep.count.Add(1)
	var req LinkPatchRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	id := r.PathValue("id")
	ls := s.linkReg.get(id)
	if ls == nil {
		s.fail(w, wr.ep, http.StatusNotFound, "no link session %q", id)
		return
	}
	tu, ok := s.parseUnit(w, wr.ep, req.Unit)
	if !ok {
		return
	}
	rep, err := ls.sess.ReplaceNamed(tu)
	if err != nil {
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, LinkPatchResponse{
		ID:         id,
		Unit:       rep.TU,
		PlanReused: rep.PlanReused,
		Plan:       planSummary(ls.sess.Plan()),
	})
}

func (s *Server) handleLinkSearch(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("link.search")
	ep.count.Add(1)
	var req LinkSearchRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	id := r.PathValue("id")
	ls := s.linkReg.get(id)
	if ls == nil {
		s.fail(w, wr.ep, http.StatusNotFound, "no link session %q", id)
		return
	}
	maxSpace := req.MaxSpace
	if maxSpace == 0 {
		maxSpace = s.cfg.DefaultMaxSpace
	}
	res, _, searched, err := ls.sess.Search(link.SearchOptions{
		ShardOptions: link.ShardOptions{
			Target:  ls.target,
			Compile: compile.Options{FnCache: s.fncache},
			Workers: wr.jobs,
		},
		MaxSpace: maxSpace,
	})
	if err != nil {
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.addPrune(res.Prune)
	resp := LinkSearchResponse{
		ID:         id,
		Target:     targetName(ls.target),
		Searched:   searched,
		SpaceTotal: res.SpaceTotal,
		Components: make([]LinkComponentStat, 0, len(res.Components)),
	}
	for _, cs := range res.Components {
		resp.InlinableSites += cs.Edges
		resp.Components = append(resp.Components, LinkComponentStat{
			Index:     cs.Index,
			Funcs:     cs.Funcs,
			Sites:     cs.Edges,
			Space:     cs.Space,
			Capped:    cs.Capped,
			Inlined:   cs.Inlined,
			SizeDelta: cs.SizeDelta,
		})
	}
	if searched {
		resp.NoInlineSize = res.NoInlineSize
		resp.OptimalSize = res.Size
		resp.InlineSites = res.Config.InlineSites()
		resp.ConfigKey = res.Config.Key()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLinkTune(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("link.tune")
	ep.count.Add(1)
	var req LinkTuneRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	id := r.PathValue("id")
	ls := s.linkReg.get(id)
	if ls == nil {
		s.fail(w, wr.ep, http.StatusNotFound, "no link session %q", id)
		return
	}
	initMode := req.Init
	if initMode == "" {
		initMode = "os"
	}
	var init link.TuneInit
	switch initMode {
	case "clean":
		init = link.InitClean
	case "os":
		init = link.InitOs
	default:
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown init mode %q (want clean|os)", initMode)
		return
	}
	var objective link.TuneObjective
	switch req.Objective {
	case "", "size":
		objective = link.ObjectiveSize
	case "weighted":
		objective = link.ObjectiveWeighted
	case "cycles":
		objective = link.ObjectiveCycles
	default:
		s.fail(w, wr.ep, http.StatusBadRequest,
			"unknown objective %q (want size, weighted, or cycles)", req.Objective)
		return
	}
	rounds := req.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	tr, _, err := ls.sess.Tune(link.TuneOptions{
		ShardOptions: link.ShardOptions{
			Target:  ls.target,
			Compile: compile.Options{FnCache: s.fncache},
			Workers: wr.jobs,
		},
		Rounds:    rounds,
		Init:      init,
		Objective: objective,
	})
	if err != nil {
		var cyc *link.CycleObjectiveError
		if errors.As(err, &cyc) {
			s.fail(w, wr.ep, http.StatusBadRequest, "%v", err)
			return
		}
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := LinkTuneResponse{
		ID:          id,
		Target:      targetName(ls.target),
		Init:        initMode,
		InitSize:    tr.Result.InitSize,
		BestSize:    tr.Result.Size,
		FinalSize:   tr.Result.FinalSize,
		InlineSites: tr.Result.Config.InlineSites(),
		ConfigKey:   tr.Result.Config.Key(),
		Components:  make([]LinkTuneComponent, 0, len(tr.Components)),
	}
	for _, rt := range tr.Result.Rounds {
		resp.Rounds = append(resp.Rounds, TuneRound{
			Round: rt.Round, Size: rt.Size, Inlined: rt.Inlined,
			NotInlined: rt.NotInlined, Toggles: rt.Toggles,
		})
	}
	for _, cs := range tr.Components {
		resp.InlinableSites += cs.Edges
		resp.Components = append(resp.Components, LinkTuneComponent{
			Index: cs.Index, Funcs: cs.Funcs, Sites: cs.Edges, Inlined: cs.Inlined,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLinkDelete(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("link.delete")
	ep.count.Add(1)
	id := r.PathValue("id")
	if !s.linkReg.remove(id) {
		s.fail(w, ep, http.StatusNotFound, "no link session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deleted"})
}
