// Package server implements inlined, the long-running inlining service:
// the four batch CLIs' shared core (parse → compile → search/tune/measure)
// behind a stdlib net/http daemon. One process-wide content-addressed
// FnCache is shared by every request, so structurally identical helpers
// compile once across all clients, modules, and — with a cache directory —
// across daemon restarts; a bounded job queue budgets each request's
// worker goroutines against a global token pool; and a drain gate turns
// SIGTERM into "finish in-flight work, 503 everything new".
//
// Work endpoints answer with *deterministic* bodies only (pure functions
// of the request), which is what lets the concurrency test tier assert
// that responses under 16-way client fire are byte-identical to a
// single-threaded run. Volatile counters are on GET /stats.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"optinline/internal/analysis/interproc"
	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/diag"
	"optinline/internal/heuristic"
	"optinline/internal/interp"
	"optinline/internal/link"
	"optinline/internal/search"
	"optinline/internal/source"
	"optinline/internal/stats"
)

// Config configures a Server. The zero value is usable: GOMAXPROCS job
// tokens, a 64-request queue bound, a private in-memory FnCache.
type Config struct {
	// Jobs is the global worker-token pool: the sum of every in-flight
	// request's worker budget never exceeds it. <= 0 selects GOMAXPROCS.
	Jobs int
	// MaxQueue bounds how many requests may wait for tokens; beyond it new
	// work is answered 503 immediately. 0 selects 64; negative means no
	// waiting at all (reject whenever the token pool is busy).
	MaxQueue int
	// RequestTimeout bounds each request's queue wait (and injected delay).
	// Compute is not cancellable mid-search, so a request that has started
	// running always runs to completion; the timeout keeps *queued*
	// requests from waiting unboundedly. <= 0 selects 2 minutes.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies. <= 0 selects 8 MiB.
	MaxBodyBytes int64
	// MaxCompilers bounds the per-module compiler pool (LRU over a source
	// hash); a compiler carries its module's whole-config and closure
	// caches, so the pool is what makes replaying a corpus cheap. <= 0
	// selects 128.
	MaxCompilers int
	// DefaultMaxSpace caps /search (and inline=optimal) recursive spaces
	// when the request does not choose. <= 0 selects 1<<16.
	DefaultMaxSpace uint64
	// FnCache is the process-wide content cache; nil builds a private
	// in-memory one. Pass compile.OpenFnCacheWith(...) for persistence.
	FnCache *compile.FnCache
	// AllowDelay honors the requests' delayMs field (synthetic latency for
	// load and drain testing). Off by default.
	AllowDelay bool
	// DisableSummaryCache makes every /analyze request recompute its
	// interprocedural summaries from scratch instead of sharing the
	// process-wide content-addressed summary cache. The differential
	// oracle for the cache: responses must be byte-identical either way.
	DisableSummaryCache bool
	// MaxLinkSessions bounds the incremental re-link session registry
	// behind /link (FIFO eviction). <= 0 selects 32.
	MaxLinkSessions int
	// DisableRelinkCache makes every link session re-solve each component
	// from scratch instead of sharing the process-wide content-keyed result
	// cache. The differential oracle for the cache: /link responses must be
	// byte-identical either way.
	DisableRelinkCache bool
}

func (c Config) normalized() Config {
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxCompilers <= 0 {
		c.MaxCompilers = 128
	}
	if c.DefaultMaxSpace == 0 {
		c.DefaultMaxSpace = 1 << 16
	}
	if c.FnCache == nil {
		c.FnCache = compile.NewFnCache()
	}
	if c.MaxLinkSessions <= 0 {
		c.MaxLinkSessions = 32
	}
	return c
}

// drainGate admits request work while the server is live and lets Drain
// wait for the in-flight count to reach zero. A plain WaitGroup would race
// Add against Wait; the mutex makes "draining?" and "admit" one atomic
// decision.
type drainGate struct {
	mu       sync.Mutex
	draining bool
	active   int
	idle     chan struct{} // non-nil while a Drain waits for active == 0
}

func (g *drainGate) Enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.active++
	return true
}

func (g *drainGate) Exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.active--
	if g.active == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
}

func (g *drainGate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// beginDrain flips the gate and returns a channel closed when in-flight
// work reaches zero (immediately closed if already idle).
func (g *drainGate) beginDrain() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	if g.idle == nil {
		g.idle = make(chan struct{})
		if g.active == 0 {
			ch := g.idle
			close(ch)
			g.idle = nil
			return ch
		}
	}
	return g.idle
}

// compilerEntry is a single-flight slot of the per-module compiler pool.
type compilerEntry struct {
	done chan struct{}
	comp *compile.Compiler
	err  error
	elem *poolElem
}

// poolElem is an intrusive LRU node (a tiny hand-rolled list keeps the
// entry → node mapping allocation-free and avoids interface casts).
type poolElem struct {
	key        string
	prev, next *poolElem
}

// Server is the inlined daemon core. Construct with New; serve
// s.Handler() on any net/http server.
type Server struct {
	cfg     Config
	fncache *compile.FnCache
	ipcache *interproc.Cache // nil when the summary cache is disabled
	queue   *jobQueue
	gate    drainGate
	mux     *http.ServeMux
	started time.Time

	poolMu    sync.Mutex
	pool      map[string]*compilerEntry
	lruHead   *poolElem // least recently used
	lruTail   *poolElem // most recently used
	poolLive  int
	poolBuilt int64
	poolHits  int64
	poolEvict int64
	// retired accumulates the cache counters of evicted compilers so
	// /stats aggregates never go backwards.
	retiredConfig stats.CacheStats
	retiredFunc   stats.CacheStats
	retiredDelta  stats.DeltaStats
	retiredEvals  int64

	pruneMu sync.Mutex
	prune   search.PruneStats

	// cycleMu guards the cycle-pricer pool behind cycle-aware /tune
	// objectives: cached baseline profiles keyed by compiler + profiling
	// parameters, FIFO-bounded, with evicted pricers' counters folded into
	// retiredCycle so /stats aggregates never go backwards.
	cycleMu      sync.Mutex
	cyclePricers map[string]*cyclePricerEntry
	cycleOrder   []string
	cycleBuilt   int64
	cycleHits    int64
	cycleEvict   int64
	retiredCycle compile.CyclePricerStats

	epMu sync.Mutex
	eps  map[string]*endpointCounters

	// linkReg registers the incremental re-link sessions behind /link;
	// relinkCache is the content-keyed component result cache they share
	// (nil when the daemon disables it).
	linkReg     linkRegistry
	relinkCache *link.ComponentCache
}

// cyclePricerEntry is a single-flight slot of the cycle-pricer pool.
type cyclePricerEntry struct {
	done   chan struct{}
	pricer *compile.CyclePricer
	err    error
}

type endpointCounters struct {
	count    atomic.Int64
	errors   atomic.Int64
	busy     atomic.Int64
	timeouts atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:     cfg,
		fncache: cfg.FnCache,
		queue:   newJobQueue(cfg.Jobs, cfg.MaxQueue),
		mux:     http.NewServeMux(),
		started: time.Now(),
		pool:    make(map[string]*compilerEntry),
		eps:     make(map[string]*endpointCounters),

		cyclePricers: make(map[string]*cyclePricerEntry),
	}
	if !cfg.DisableSummaryCache {
		s.ipcache = interproc.NewCache()
	}
	s.linkReg.sessions = make(map[string]*linkSession)
	if !cfg.DisableRelinkCache {
		s.relinkCache = link.NewComponentCache()
	}
	s.mux.HandleFunc("POST /analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /compile", s.handleCompile)
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /tune", s.handleTune)
	s.mux.HandleFunc("POST /link", s.handleLinkCreate)
	s.mux.HandleFunc("POST /link/{id}/patch", s.handleLinkPatch)
	s.mux.HandleFunc("POST /link/{id}/search", s.handleLinkSearch)
	s.mux.HandleFunc("POST /link/{id}/tune", s.handleLinkTune)
	s.mux.HandleFunc("DELETE /link/{id}", s.handleLinkDelete)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// FnCache returns the process-wide content cache (for Save/Close at exit).
func (s *Server) FnCache() *compile.FnCache { return s.fncache }

// Drain stops admitting work — new work requests and /healthz answer 503
// — and blocks until every in-flight request has finished or ctx expires.
// /stats and /healthz keep answering throughout, which is how a load
// balancer notices the instance is going away while requests complete.
func (s *Server) Drain(ctx context.Context) error {
	idle := s.gate.beginDrain()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.gate.Draining() }

func (s *Server) ep(name string) *endpointCounters {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	c, ok := s.eps[name]
	if !ok {
		c = &endpointCounters{}
		s.eps[name] = c
	}
	return c
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.gate.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// workRequest is the common prologue of the three work endpoints.
type workRequest struct {
	ep      *endpointCounters
	jobs    int
	release func()
}

// admit runs the shared request prologue after decode: drain gate, queue
// admission under the request context, optional injected delay. When the
// second return is false the response has been written and the caller must
// return; when true, the caller must defer wr.release().
func (s *Server) admit(w http.ResponseWriter, r *http.Request, ep *endpointCounters, jobs, delayMs int) (*workRequest, bool) {
	if !s.gate.Enter() {
		ep.busy.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
		return nil, false
	}
	wr := &workRequest{ep: ep}
	exitGate := true
	defer func() {
		if exitGate {
			s.gate.Exit()
		}
	}()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	wr.jobs = s.queue.Clamp(jobs)
	if err := s.queue.Acquire(ctx, wr.jobs); err != nil {
		cancel()
		if errors.Is(err, ErrQueueFull) {
			ep.busy.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "job queue full"})
		} else {
			ep.timeouts.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "timed out waiting for job tokens"})
		}
		return nil, false
	}
	if s.cfg.AllowDelay && delayMs > 0 {
		select {
		case <-time.After(time.Duration(delayMs) * time.Millisecond):
		case <-ctx.Done():
			cancel()
			s.queue.Release(wr.jobs)
			ep.timeouts.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "timed out during injected delay"})
			return nil, false
		}
	}
	gate := &s.gate
	queue := s.queue
	jobsN := wr.jobs
	wr.release = func() {
		cancel()
		queue.Release(jobsN)
		gate.Exit()
	}
	exitGate = false // ownership moved to wr.release
	return wr, true
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, ep *endpointCounters, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		ep.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) fail(w http.ResponseWriter, ep *endpointCounters, code int, format string, args ...any) {
	ep.errors.Add(1)
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func parseTarget(name string) (codegen.Target, bool) {
	switch name {
	case "", "x86":
		return codegen.TargetX86, true
	case "wasm":
		return codegen.TargetWASM, true
	}
	return codegen.TargetX86, false
}

func targetName(t codegen.Target) string {
	if t == codegen.TargetWASM {
		return "wasm"
	}
	return "x86"
}

// compilerKey identifies a compiler by the exact source text, the source
// language (the name's extension picks the frontend), and the target. The
// exact bytes — not a structural fingerprint — so two modules that swap
// name→body bindings can never share a compiler.
func compilerKey(name, src string, target codegen.Target) string {
	h := sha256.Sum256([]byte(src))
	return fmt.Sprintf("%x/%s/%d", h, filepath.Ext(name), target)
}

// compiler returns the pooled compiler for (name, src, target), building
// and caching it on first use. Single-flight: concurrent first requests
// for one module share a single parse+build.
func (s *Server) compiler(name, src string, target codegen.Target) (*compile.Compiler, error) {
	key := compilerKey(name, src, target)
	s.poolMu.Lock()
	if e, ok := s.pool[key]; ok {
		if e.elem != nil {
			s.lruTouch(e.elem)
		}
		s.poolMu.Unlock()
		<-e.done
		if e.err == nil {
			s.poolMu.Lock()
			s.poolHits++
			s.poolMu.Unlock()
		}
		return e.comp, e.err
	}
	e := &compilerEntry{done: make(chan struct{})}
	s.pool[key] = e
	s.poolMu.Unlock()

	mod, err := source.FromBytes(name, []byte(src))
	if err == nil {
		e.comp = compile.NewWithOptions(mod, target, compile.Options{FnCache: s.fncache})
	} else {
		e.err = fmt.Errorf("parse %s: %w", name, err)
	}

	s.poolMu.Lock()
	if e.err != nil {
		delete(s.pool, key) // failed builds are not cached; next try re-parses
	} else {
		e.elem = s.lruPush(key)
		s.poolLive++
		s.poolBuilt++
		s.evictCompilersLocked()
	}
	s.poolMu.Unlock()
	close(e.done)
	return e.comp, e.err
}

func (s *Server) lruPush(key string) *poolElem {
	el := &poolElem{key: key}
	if s.lruTail == nil {
		s.lruHead, s.lruTail = el, el
	} else {
		el.prev = s.lruTail
		s.lruTail.next = el
		s.lruTail = el
	}
	return el
}

func (s *Server) lruRemove(el *poolElem) {
	if el.prev != nil {
		el.prev.next = el.next
	} else {
		s.lruHead = el.next
	}
	if el.next != nil {
		el.next.prev = el.prev
	} else {
		s.lruTail = el.prev
	}
	el.prev, el.next = nil, nil
}

func (s *Server) lruTouch(el *poolElem) {
	if s.lruTail == el {
		return
	}
	s.lruRemove(el)
	if s.lruTail == nil {
		s.lruHead, s.lruTail = el, el
		return
	}
	el.prev = s.lruTail
	s.lruTail.next = el
	s.lruTail = el
}

// evictCompilersLocked retires least-recently-used compilers beyond the
// pool bound, folding their counters into the retired aggregates first so
// /stats totals are monotone.
func (s *Server) evictCompilersLocked() {
	for s.poolLive > s.cfg.MaxCompilers && s.lruHead != nil {
		el := s.lruHead
		e := s.pool[el.key]
		s.lruRemove(el)
		delete(s.pool, el.key)
		s.poolLive--
		s.poolEvict++
		if e != nil && e.comp != nil {
			s.retiredConfig = s.retiredConfig.Add(e.comp.ConfigCacheStats())
			s.retiredFunc = s.retiredFunc.Add(e.comp.FuncCacheStats())
			s.retiredDelta = s.retiredDelta.Add(e.comp.DeltaStats())
			s.retiredEvals += e.comp.Evaluations()
		}
	}
}

func (s *Server) addPrune(p search.PruneStats) {
	s.pruneMu.Lock()
	s.prune = s.prune.Add(p)
	s.pruneMu.Unlock()
}

// cycleProfile describes the profiling run behind a cycle-aware /tune
// objective. Defaults are filled before keying so equivalent requests share
// one baseline interpretation and pricer.
type cycleProfile struct {
	entry      string
	args       []int64
	fuel       int64
	cacheBytes int
	// noDelta pricers live under their own key: SetCycleDelta is a pricer-
	// wide switch, so the oracle mode must never flip a shared pricer that
	// a concurrent delta-mode session is probing.
	noDelta bool
}

func (cp cycleProfile) key(compKey string) string {
	return fmt.Sprintf("%s/%s/%v/%d/%d/%t",
		compKey, cp.entry, cp.args, cp.fuel, cp.cacheBytes, cp.noDelta)
}

// cyclePricer returns the pooled pricer for (compiler, profile), building
// it on first use. Single-flight like the compiler pool: concurrent first
// requests share one baseline build + interpretation.
func (s *Server) cyclePricer(comp *compile.Compiler, compKey string, cp cycleProfile) (*compile.CyclePricer, error) {
	key := cp.key(compKey)
	s.cycleMu.Lock()
	if e, ok := s.cyclePricers[key]; ok {
		s.cycleMu.Unlock()
		<-e.done
		if e.err == nil {
			s.cycleMu.Lock()
			s.cycleHits++
			s.cycleMu.Unlock()
		}
		return e.pricer, e.err
	}
	e := &cyclePricerEntry{done: make(chan struct{})}
	s.cyclePricers[key] = e
	s.cycleMu.Unlock()

	e.pricer, e.err = buildCyclePricer(comp, cp)

	s.cycleMu.Lock()
	if e.err != nil {
		delete(s.cyclePricers, key) // failed profiles are not cached
	} else {
		s.cycleOrder = append(s.cycleOrder, key)
		s.cycleBuilt++
		s.evictPricersLocked()
	}
	s.cycleMu.Unlock()
	close(e.done)
	return e.pricer, e.err
}

func buildCyclePricer(comp *compile.Compiler, cp cycleProfile) (*compile.CyclePricer, error) {
	built, err := comp.Build(callgraph.NewConfig())
	if err != nil {
		return nil, fmt.Errorf("build no-inline baseline: %w", err)
	}
	_, prof, err := interp.Collect(built, cp.entry, cp.args, interp.Options{Fuel: cp.fuel})
	if err != nil {
		return nil, fmt.Errorf("profile %s%v: %w", cp.entry, cp.args, err)
	}
	p, err := comp.NewCyclePricer(prof, compile.CycleOptions{CacheBytes: cp.cacheBytes})
	if err != nil {
		return nil, err
	}
	if cp.noDelta {
		p.SetCycleDelta(false)
	}
	return p, nil
}

// evictPricersLocked retires the oldest pricers beyond the pool bound
// (shared with the compiler pool's), folding their counters into the
// retired aggregate first so /stats totals are monotone.
func (s *Server) evictPricersLocked() {
	for len(s.cycleOrder) > s.cfg.MaxCompilers {
		key := s.cycleOrder[0]
		s.cycleOrder = s.cycleOrder[1:]
		if e, ok := s.cyclePricers[key]; ok {
			delete(s.cyclePricers, key)
			if e.pricer != nil {
				s.retiredCycle = s.retiredCycle.Add(e.pricer.Stats())
			}
			s.cycleEvict++
		}
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("compile")
	ep.count.Add(1)
	var req CompileRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	target, tok := parseTarget(req.Target)
	if !tok {
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown target %q", req.Target)
		return
	}
	if req.Name == "" || req.Source == "" {
		s.fail(w, wr.ep, http.StatusBadRequest, "name and source are required")
		return
	}
	comp, err := s.compiler(req.Name, req.Source, target)
	if err != nil {
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	g := comp.Graph()
	mode := req.Inline
	if mode == "" {
		mode = "os"
	}
	rounds := req.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	var cfg *callgraph.Config
	switch mode {
	case "none":
		cfg = callgraph.NewConfig()
	case "os":
		cfg = heuristic.OsConfig(comp.Module(), g)
	case "tune":
		best, _, _ := autotune.Combined(comp, heuristic.OsConfig(comp.Module(), g),
			autotune.Options{Rounds: rounds, Workers: wr.jobs})
		cfg = best.Config
	case "optimal":
		maxSpace := req.MaxSpace
		if maxSpace == 0 {
			maxSpace = s.cfg.DefaultMaxSpace
		}
		res, searched := search.Optimal(comp, search.Options{Workers: wr.jobs, MaxSpace: maxSpace})
		if !searched {
			s.fail(w, wr.ep, http.StatusUnprocessableEntity,
				"recursive space %d exceeds maxSpace %d; raise maxSpace or use inline=tune", res.SpaceSize, maxSpace)
			return
		}
		s.addPrune(res.Prune)
		cfg = res.Config
	default:
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown inline mode %q", mode)
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Name:           req.Name,
		Target:         targetName(target),
		Inline:         mode,
		Size:           comp.Size(cfg),
		InlinableSites: len(g.Edges),
		InlinedSites:   cfg.InlineCount(),
		InlineSites:    cfg.InlineSites(),
		ConfigKey:      cfg.Key(),
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("search")
	ep.count.Add(1)
	var req SearchRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	target, tok := parseTarget(req.Target)
	if !tok {
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown target %q", req.Target)
		return
	}
	if req.Name == "" || req.Source == "" {
		s.fail(w, wr.ep, http.StatusBadRequest, "name and source are required")
		return
	}
	comp, err := s.compiler(req.Name, req.Source, target)
	if err != nil {
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	g := comp.Graph()
	hc := heuristic.OsConfig(comp.Module(), g)
	maxSpace := req.MaxSpace
	if maxSpace == 0 {
		maxSpace = s.cfg.DefaultMaxSpace
	}
	resp := SearchResponse{
		Name:           req.Name,
		Target:         targetName(target),
		NoInlineSize:   comp.Size(callgraph.NewConfig()),
		HeuristicSize:  comp.Size(hc),
		InlinableSites: len(g.Edges),
	}
	res, searched := search.Optimal(comp, search.Options{Workers: wr.jobs, MaxSpace: maxSpace})
	resp.Searched = searched
	resp.SpaceSize = res.SpaceSize
	if searched {
		s.addPrune(res.Prune)
		resp.OptimalSize = res.Size
		resp.InlineSites = res.Config.InlineSites()
		resp.ConfigKey = res.Config.Key()
		resp.Agreement = callgraph.Agreement(g.Sites(), res.Config, hc)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("tune")
	ep.count.Add(1)
	var req TuneRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	target, tok := parseTarget(req.Target)
	if !tok {
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown target %q", req.Target)
		return
	}
	if req.Name == "" || req.Source == "" {
		s.fail(w, wr.ep, http.StatusBadRequest, "name and source are required")
		return
	}
	comp, err := s.compiler(req.Name, req.Source, target)
	if err != nil {
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	g := comp.Graph()
	initMode := req.Init
	if initMode == "" {
		initMode = "os"
	}
	var init *callgraph.Config
	switch initMode {
	case "clean":
		init = nil
	case "os":
		init = heuristic.OsConfig(comp.Module(), g)
	default:
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown init mode %q (want clean|os)", initMode)
		return
	}
	rounds := req.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	objective := req.Objective
	if objective == "" {
		objective = "size"
	}
	opts := autotune.Options{Rounds: rounds, Workers: wr.jobs}
	var res autotune.Result
	switch objective {
	case "size":
		res = autotune.Tune(comp, init, opts)
	case "weighted", "cycles":
		if req.Lambda < 0 {
			s.fail(w, wr.ep, http.StatusBadRequest, "lambda must be >= 0")
			return
		}
		cp := cycleProfile{
			entry:      req.Entry,
			args:       req.Args,
			fuel:       req.Fuel,
			cacheBytes: req.CacheBytes,
			noDelta:    req.NoCycleDelta,
		}
		if cp.entry == "" {
			cp.entry = "entry"
		}
		if cp.args == nil {
			cp.args = []int64{7}
		}
		if cp.fuel <= 0 {
			cp.fuel = 20_000_000
		}
		pricer, err := s.cyclePricer(comp, compilerKey(req.Name, req.Source, target), cp)
		if err != nil {
			s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		if objective == "cycles" {
			res = autotune.TuneCycles(comp, pricer, init, opts)
		} else {
			res = autotune.TuneWeighted(comp, pricer, req.Lambda, init, opts)
		}
	default:
		s.fail(w, wr.ep, http.StatusBadRequest,
			"unknown objective %q (want size, weighted, or cycles)", objective)
		return
	}
	out := TuneResponse{
		Name:        req.Name,
		Target:      targetName(target),
		Init:        initMode,
		InitSize:    res.InitSize,
		BestSize:    res.Size,
		InlineSites: res.Config.InlineSites(),
		ConfigKey:   res.Config.Key(),
	}
	if objective != "size" {
		// Size sessions keep the pre-objective response shape byte-for-byte;
		// cycle-aware sessions add their fields. The values are worker- and
		// delta-independent, so the body stays a pure function of the request.
		out.Objective = objective
		out.InitCycles = res.InitCycles
		out.BestCycles = res.Cycles
		if objective == "weighted" {
			out.Lambda = req.Lambda
		}
	}
	for _, rt := range res.Rounds {
		out.Rounds = append(out.Rounds, TuneRound{
			Round: rt.Round, Size: rt.Size, Cycles: rt.Cycles, Inlined: rt.Inlined,
			NotInlined: rt.NotInlined, Toggles: rt.Toggles,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	ep := s.ep("analyze")
	ep.count.Add(1)
	var req AnalyzeRequest
	if !s.decode(w, r, ep, &req) {
		return
	}
	wr, ok := s.admit(w, r, ep, req.Jobs, req.DelayMs)
	if !ok {
		return
	}
	defer wr.release()

	target, tok := parseTarget(req.Target)
	if !tok {
		s.fail(w, wr.ep, http.StatusBadRequest, "unknown target %q", req.Target)
		return
	}
	if req.Name == "" || req.Source == "" {
		s.fail(w, wr.ep, http.StatusBadRequest, "name and source are required")
		return
	}
	comp, err := s.compiler(req.Name, req.Source, target)
	if err != nil {
		s.fail(w, wr.ep, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	mod, g := comp.Module(), comp.Graph()
	ms := interproc.Analyze(mod, g, s.ipcache)
	fnJSON, err := ms.JSON()
	if err != nil {
		s.fail(w, wr.ep, http.StatusInternalServerError, "marshal summaries: %v", err)
		return
	}
	findings := interproc.Lints(mod, g, ms)
	findings.Sort()
	if findings == nil {
		findings = diag.List{}
	}

	edges := append([]callgraph.Edge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].Site < edges[j].Site })
	sites := []AnalyzeSite{}
	for _, e := range edges {
		fv := ms.SiteFeatures(e)
		sites = append(sites, AnalyzeSite{
			Site:     e.Site,
			Caller:   e.Caller,
			Callee:   e.Callee,
			Features: append([]float64(nil), fv[:]...),
		})
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Name:          req.Name,
		Target:        targetName(target),
		SchemaVersion: interproc.FeatureSchemaVersion,
		FeatureNames:  interproc.SiteFeatureNames[:],
		Functions:     fnJSON,
		Findings:      findings,
		Sites:         sites,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.gate.Draining(),
		Queue:         s.queue.Stats(),
		Requests:      make(map[string]EndpointStats),
	}
	s.epMu.Lock()
	for name, c := range s.eps {
		resp.Requests[name] = EndpointStats{
			Count:    c.count.Load(),
			Errors:   c.errors.Load(),
			Busy:     c.busy.Load(),
			Timeouts: c.timeouts.Load(),
		}
	}
	s.epMu.Unlock()

	if s.ipcache != nil {
		ist := s.ipcache.Stats()
		resp.SummaryCache = SummaryCacheCounters{
			Hits: ist.Hits, Misses: ist.Misses, Entries: ist.Entries,
		}
	}

	fst := s.fncache.Stats()
	resp.FnCache = FnCacheStatsJSON{
		Hits: fst.Hits, Misses: fst.Misses, DiskHits: fst.DiskHits,
		Loaded: fst.Loaded, Corrupt: fst.Corrupt, Dupes: fst.Dupes,
		Stored: fst.Stored, Evicted: fst.Evicted, Syncs: fst.Syncs,
		Entries: s.fncache.Len(),
	}

	s.poolMu.Lock()
	cfgStats, fnStats, deltaStats := s.retiredConfig, s.retiredFunc, s.retiredDelta
	evals := s.retiredEvals
	for _, e := range s.pool {
		select {
		case <-e.done:
		default:
			continue // still building; no counters yet
		}
		if e.comp == nil {
			continue
		}
		cfgStats = cfgStats.Add(e.comp.ConfigCacheStats())
		fnStats = fnStats.Add(e.comp.FuncCacheStats())
		deltaStats = deltaStats.Add(e.comp.DeltaStats())
		evals += e.comp.Evaluations()
	}
	resp.Compilers = CompilerPoolStats{
		Live: s.poolLive, Built: s.poolBuilt, Hits: s.poolHits, Evicted: s.poolEvict,
	}
	s.poolMu.Unlock()

	resp.ConfigCache = CacheCounters{Hits: cfgStats.Hits, Misses: cfgStats.Misses}
	resp.FuncCache = CacheCounters{Hits: fnStats.Hits, Misses: fnStats.Misses}
	resp.Delta = DeltaCounters{Evals: deltaStats.Evals, DirtyFuncs: deltaStats.DirtyFuncs}
	resp.Evaluations = evals

	s.pruneMu.Lock()
	resp.Prune = PruneCounters{
		Enabled:    s.prune.Enabled,
		Subtrees:   s.prune.Subtrees,
		MemoHits:   s.prune.MemoHits,
		MemoMisses: s.prune.MemoMisses,
		BoundEvals: s.prune.BoundEvals,
	}
	s.pruneMu.Unlock()

	s.cycleMu.Lock()
	cyc := s.retiredCycle
	for _, e := range s.cyclePricers {
		select {
		case <-e.done:
		default:
			continue // still profiling; no counters yet
		}
		if e.pricer == nil {
			continue
		}
		cyc = cyc.Add(e.pricer.Stats())
	}
	resp.CyclePricers = CyclePricerPoolStats{
		Live:            len(s.cycleOrder),
		Built:           s.cycleBuilt,
		Hits:            s.cycleHits,
		Evicted:         s.cycleEvict,
		Repricings:      cyc.Repricings,
		FullEvals:       cyc.FullEvals,
		ConfigCacheHits: cyc.CacheHits,
		ReplayEvents:    cyc.ReplayEvents,
		CostCacheHits:   cyc.CostHits,
		CostCacheMisses: cyc.CostMisses,
	}
	s.cycleMu.Unlock()

	resp.LinkSessions = s.linkReg.stats()
	if s.relinkCache != nil {
		cst := s.relinkCache.Stats()
		resp.RelinkCache = RelinkCacheCounters{
			Hits: cst.Hits, Misses: cst.Misses, Entries: cst.Entries,
		}
	}

	writeJSON(w, http.StatusOK, resp)
}
