package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// ErrQueueFull reports that the bounded job queue already holds its maximum
// number of waiting requests; the caller should answer 503 rather than let
// unbounded queueing turn overload into unbounded latency.
var ErrQueueFull = errors.New("server: job queue full")

// jobQueue is the daemon's bounded job queue: a weighted FIFO semaphore
// over "job tokens", one token per worker goroutine a request is budgeted.
// A request acquires its whole budget atomically (all-or-nothing, so two
// half-granted requests can never deadlock each other) and strictly in
// arrival order — a wide request at the head blocks narrower ones behind
// it, which is the price of starvation-freedom and is what keeps latency
// predictable under load. The number of *waiting* requests is bounded
// separately: beyond maxWaiters, Acquire fails fast with ErrQueueFull.
type jobQueue struct {
	mu       sync.Mutex
	capacity int
	free     int
	waiters  *list.List // of *jqWaiter, FIFO

	maxWaiters int

	// Counters for /stats; all guarded by mu.
	granted    int64
	rejected   int64
	waited     int64 // requests that could not be granted immediately
	peakQueued int
}

type jqWaiter struct {
	n     int
	ready chan struct{} // closed by grantLocked with the tokens assigned
}

func newJobQueue(capacity, maxWaiters int) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	if maxWaiters < 0 {
		maxWaiters = 0
	}
	return &jobQueue{capacity: capacity, free: capacity, maxWaiters: maxWaiters, waiters: list.New()}
}

// Clamp bounds a requested per-request budget to [1, capacity].
func (q *jobQueue) Clamp(n int) int {
	if n < 1 {
		return 1
	}
	if n > q.capacity {
		return q.capacity
	}
	return n
}

// Acquire blocks until n tokens are granted, the queue bound rejects the
// request (ErrQueueFull), or ctx is done (its error). n is clamped to the
// queue capacity by the caller via Clamp.
func (q *jobQueue) Acquire(ctx context.Context, n int) error {
	n = q.Clamp(n)
	q.mu.Lock()
	if q.waiters.Len() == 0 && q.free >= n {
		q.free -= n
		q.granted++
		q.mu.Unlock()
		return nil
	}
	if q.waiters.Len() >= q.maxWaiters {
		q.rejected++
		q.mu.Unlock()
		return ErrQueueFull
	}
	w := &jqWaiter{n: n, ready: make(chan struct{})}
	elem := q.waiters.PushBack(w)
	q.waited++
	if q.waiters.Len() > q.peakQueued {
		q.peakQueued = q.waiters.Len()
	}
	q.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the tokens back
			// (Release re-runs the grant loop for the next waiter).
			q.free += w.n
			q.grantLocked()
			q.mu.Unlock()
		default:
			q.waiters.Remove(elem)
			q.mu.Unlock()
		}
		return ctx.Err()
	}
}

// Release returns n tokens and wakes whatever prefix of the FIFO now fits.
func (q *jobQueue) Release(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.free += n
	if q.free > q.capacity {
		panic("server: jobQueue over-released")
	}
	q.grantLocked()
}

func (q *jobQueue) grantLocked() {
	for q.waiters.Len() > 0 {
		front := q.waiters.Front()
		w := front.Value.(*jqWaiter)
		if w.n > q.free {
			return // strict FIFO: nothing behind the head may overtake it
		}
		q.free -= w.n
		q.waiters.Remove(front)
		q.granted++
		close(w.ready)
	}
}

// queueStats is a consistent snapshot for /stats.
type queueStats struct {
	Capacity   int   `json:"capacity"`
	Busy       int   `json:"busyTokens"`
	Queued     int   `json:"queuedRequests"`
	Granted    int64 `json:"granted"`
	Rejected   int64 `json:"rejected"`
	Waited     int64 `json:"waited"`
	PeakQueued int   `json:"peakQueued"`
}

func (q *jobQueue) Stats() queueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return queueStats{
		Capacity:   q.capacity,
		Busy:       q.capacity - q.free,
		Queued:     q.waiters.Len(),
		Granted:    q.granted,
		Rejected:   q.rejected,
		Waited:     q.waited,
		PeakQueued: q.peakQueued,
	}
}
