package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/compile"
	"optinline/internal/interp"
)

// libPricer mirrors the server's pricer construction on a standalone
// compiler: profile the no-inline baseline at the request defaults.
func libPricer(t *testing.T, comp *compile.Compiler) *compile.CyclePricer {
	t.Helper()
	built, err := comp.Build(callgraph.NewConfig())
	if err != nil {
		t.Fatalf("build baseline: %v", err)
	}
	_, prof, err := interp.Collect(built, "entry", []int64{7}, interp.Options{Fuel: 20_000_000})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	p, err := comp.NewCyclePricer(prof, compile.CycleOptions{})
	if err != nil {
		t.Fatalf("pricer: %v", err)
	}
	return p
}

// TestTuneWeightedObjectiveMatchesLibrary compares /tune with a weighted
// objective against a direct TuneWeighted session over the same profile.
func TestTuneWeightedObjectiveMatchesLibrary(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 2})
	comp := libCompiler(t, f)
	pricer := libPricer(t, comp)
	want := autotune.TuneWeighted(comp, pricer, 0.1, nil, autotune.Options{Rounds: 3, Workers: 1})

	status, body := post(t, ts.URL+"/tune", TuneRequest{
		Name: f.name, Source: f.src, Init: "clean", Rounds: 3,
		Objective: "weighted", Lambda: 0.1,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp TuneResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Objective != "weighted" || resp.Lambda != 0.1 {
		t.Errorf("echoed objective %q lambda %v", resp.Objective, resp.Lambda)
	}
	if resp.InitSize != want.InitSize || resp.InitCycles != want.InitCycles {
		t.Errorf("init (%d,%d), library (%d,%d)", resp.InitSize, resp.InitCycles, want.InitSize, want.InitCycles)
	}
	if resp.BestSize != want.Size || resp.BestCycles != want.Cycles {
		t.Errorf("best (%d,%d), library (%d,%d)", resp.BestSize, resp.BestCycles, want.Size, want.Cycles)
	}
	if resp.ConfigKey != want.Config.Key() {
		t.Errorf("configKey %q, library %q", resp.ConfigKey, want.Config.Key())
	}
	if len(resp.Rounds) != len(want.Rounds) {
		t.Fatalf("%d rounds, library %d", len(resp.Rounds), len(want.Rounds))
	}
	for i, rt := range want.Rounds {
		got := resp.Rounds[i]
		if got.Size != rt.Size || got.Cycles != rt.Cycles || got.Toggles != rt.Toggles {
			t.Errorf("round %d: %+v, library %+v", i, got, rt)
		}
	}
	if resp.BestCycles <= 0 {
		t.Errorf("BestCycles = %d, want > 0", resp.BestCycles)
	}
}

// TestTuneCycleObjectiveDeltaOracle replays one cycles-only session with
// incremental repricing and with the whole-module oracle; the bodies must
// be byte-identical, and /stats must show each mode's counters.
func TestTuneCycleObjectiveDeltaOracle(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 2})

	req := TuneRequest{Name: f.name, Source: f.src, Init: "os", Rounds: 3, Objective: "cycles"}
	status, delta := post(t, ts.URL+"/tune", req)
	if status != http.StatusOK {
		t.Fatalf("delta status %d: %s", status, delta)
	}
	req.NoCycleDelta = true
	status, oracle := post(t, ts.URL+"/tune", req)
	if status != http.StatusOK {
		t.Fatalf("oracle status %d: %s", status, oracle)
	}
	if !bytes.Equal(delta, oracle) {
		t.Errorf("bodies differ:\ndelta:  %s\noracle: %s", delta, oracle)
	}

	st := getStats(t, ts.URL)
	cp := st.CyclePricers
	// The two modes key separate pricers (SetCycleDelta is pricer-wide).
	if cp.Built != 2 || cp.Live != 2 {
		t.Errorf("pricer pool built=%d live=%d, want 2/2", cp.Built, cp.Live)
	}
	if cp.Repricings == 0 {
		t.Errorf("no incremental repricings recorded")
	}
	if cp.FullEvals == 0 {
		t.Errorf("no whole-module oracle evaluations recorded")
	}
	if cp.ReplayEvents == 0 {
		t.Errorf("no i-cache replay events recorded")
	}

	// Replaying the delta request reuses its pooled profile.
	req.NoCycleDelta = false
	status, again := post(t, ts.URL+"/tune", req)
	if status != http.StatusOK {
		t.Fatalf("replay status %d: %s", status, again)
	}
	if !bytes.Equal(again, delta) {
		t.Errorf("replay body differs from first run")
	}
	st = getStats(t, ts.URL)
	if st.CyclePricers.Hits == 0 {
		t.Errorf("replay did not hit the pricer pool (hits=%d)", st.CyclePricers.Hits)
	}
	if st.CyclePricers.Built != 2 {
		t.Errorf("replay built a new pricer (built=%d)", st.CyclePricers.Built)
	}
}

// TestTuneObjectiveErrors walks the cycle-objective rejection matrix.
func TestTuneObjectiveErrors(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 1})

	cases := []struct {
		name string
		req  TuneRequest
		code int
	}{
		{"unknown objective", TuneRequest{Name: f.name, Source: f.src, Objective: "latency"}, http.StatusBadRequest},
		{"negative lambda", TuneRequest{Name: f.name, Source: f.src, Objective: "weighted", Lambda: -1}, http.StatusBadRequest},
		{"missing entry", TuneRequest{Name: f.name, Source: f.src, Objective: "cycles", Entry: "no_such_fn"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		status, body := post(t, ts.URL+"/tune", tc.req)
		if status != tc.code {
			t.Errorf("%s: status %d (want %d): %s", tc.name, status, tc.code, body)
		}
	}
}

// TestTuneSizeResponseHasNoCycleFields pins the legacy response shape:
// size sessions must not grow objective/cycle keys on the wire.
func TestTuneSizeResponseHasNoCycleFields(t *testing.T) {
	f := exampleSources(t)[0]
	_, ts := newTestServer(t, Config{Jobs: 1})
	status, body := post(t, ts.URL+"/tune", TuneRequest{Name: f.name, Source: f.src, Rounds: 2})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	for _, key := range []string{"objective", "lambda", "initCycles", "bestCycles", "cycles"} {
		if bytes.Contains(body, []byte(`"`+key+`"`)) {
			t.Errorf("size-session body leaks %q: %s", key, body)
		}
	}
}
