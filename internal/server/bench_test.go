package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// BenchmarkServerJobsScaling measures daemon wall clock per full corpus
// replay as the global worker-token pool widens: 8 concurrent clients
// replay the example corpus (compile-os + search per file) against servers
// configured -jobs 1/2/4/8. On a multi-core machine the pool turns client
// concurrency into parallel search workers; on one CPU the curve is flat
// and the numbers document exactly that (BENCH_search.json records the
// host's CPU count next to the figures).
func BenchmarkServerJobsScaling(b *testing.B) {
	files := exampleSources(b)
	type benchReq struct {
		path    string
		payload []byte
	}
	build := func(jobs int) []benchReq {
		var reqs []benchReq
		for _, f := range files {
			cp, err := json.Marshal(CompileRequest{Name: f.name, Source: f.src, Inline: "os", Jobs: jobs})
			if err != nil {
				b.Fatal(err)
			}
			sp, err := json.Marshal(SearchRequest{Name: f.name, Source: f.src, MaxSpace: 1 << 16, Jobs: jobs})
			if err != nil {
				b.Fatal(err)
			}
			reqs = append(reqs, benchReq{"/compile", cp}, benchReq{"/search", sp})
		}
		return reqs
	}

	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			srv := New(Config{Jobs: jobs, MaxQueue: 1 << 12})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			reqs := build(jobs)
			client := &http.Client{}

			// Warm the daemon-side caches once so iterations measure the
			// steady state a long-running service actually operates in.
			for _, r := range reqs {
				doBench(b, client, ts.URL, r.path, r.payload)
			}

			const clients = 8
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for j := range reqs {
							r := reqs[(j+c*5)%len(reqs)]
							doBench(b, client, ts.URL, r.path, r.payload)
						}
					}(c)
				}
				wg.Wait()
			}
		})
	}
}

func doBench(b *testing.B, client *http.Client, base, path string, payload []byte) {
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		b.Error(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Errorf("%s: status %d", path, resp.StatusCode)
	}
}
