package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/link"
	"optinline/internal/source"
)

// linkedUnits loads named files from the linked example corpus as /link
// request units. The unit name stays the base file name even for edit
// variants: patch addresses are the original unit names.
func linkedUnits(t *testing.T, names ...string) []LinkUnit {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "minc", "linked")
	units := make([]LinkUnit, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatalf("read %s: %v", n, err)
		}
		units = append(units, LinkUnit{Name: n, Source: string(data)})
	}
	return units
}

func linkedSource(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "minc", "linked", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(data)
}

// coldLink builds a fresh cold linker over the units — the reference the
// incremental session must agree with byte for byte.
func coldLink(t *testing.T, units []LinkUnit) *link.Linker {
	t.Helper()
	tus := make([]link.TU, 0, len(units))
	for _, u := range units {
		mod, err := source.FromBytes(u.Name, []byte(u.Source))
		if err != nil {
			t.Fatalf("parse %s: %v", u.Name, err)
		}
		tus = append(tus, link.ModuleTU(u.Name, mod))
	}
	l, err := link.New(tus, link.Options{DupExported: link.DupExportedRename})
	if err != nil {
		t.Fatalf("cold link: %v", err)
	}
	return l
}

func coldShardOptions() link.ShardOptions {
	return link.ShardOptions{
		Target:  codegen.TargetX86,
		Compile: compile.Options{FnCache: compile.NewFnCache()},
		Workers: 1,
	}
}

func decodeInto(t *testing.T, body []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
}

// TestLinkSessionSearchParity drives the create/patch/search lifecycle and
// cross-checks every search response against a cold link of the current
// unit contents.
func TestLinkSessionSearchParity(t *testing.T) {
	units := linkedUnits(t, "app.minc", "mathlib.minc")
	_, ts := newTestServer(t, Config{Jobs: 2})

	status, body := post(t, ts.URL+"/link", LinkCreateRequest{
		ID: "s1", Units: units, DupPolicy: "rename",
	})
	if status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, body)
	}
	var created LinkCreateResponse
	decodeInto(t, body, &created)
	coldPlan := coldLink(t, units).Plan()
	if created.Plan.Components != len(coldPlan.Components) || created.Plan.Sites != len(coldPlan.Edges) {
		t.Fatalf("create plan %+v disagrees with cold plan (%d components, %d sites)",
			created.Plan, len(coldPlan.Components), len(coldPlan.Edges))
	}

	checkSearch := func(step string, cur []LinkUnit) {
		t.Helper()
		status, body := post(t, ts.URL+"/link/s1/search", LinkSearchRequest{MaxSpace: 1 << 20})
		if status != http.StatusOK {
			t.Fatalf("%s: search status %d: %s", step, status, body)
		}
		var got LinkSearchResponse
		decodeInto(t, body, &got)
		want, ok, err := coldLink(t, cur).OptimalSearch(link.SearchOptions{
			ShardOptions: coldShardOptions(), MaxSpace: 1 << 20,
		})
		if err != nil || !ok {
			t.Fatalf("%s: cold search: ok=%v err=%v", step, ok, err)
		}
		if !got.Searched {
			t.Fatalf("%s: searched=false", step)
		}
		if got.OptimalSize != want.Size || got.NoInlineSize != want.NoInlineSize ||
			got.ConfigKey != want.Config.Key() || got.SpaceTotal != want.SpaceTotal {
			t.Errorf("%s: search response (size %d, noInline %d, key %s, space %d) disagrees with cold (%d, %d, %s, %d)",
				step, got.OptimalSize, got.NoInlineSize, got.ConfigKey, got.SpaceTotal,
				want.Size, want.NoInlineSize, want.Config.Key(), want.SpaceTotal)
		}
		if len(got.Components) != len(want.Components) {
			t.Errorf("%s: %d component stats, cold has %d", step, len(got.Components), len(want.Components))
		}
	}

	checkSearch("initial", units)

	// Body-only edit: the plan must be reused and the next search agree
	// with a cold link of the edited contents.
	edited := []LinkUnit{units[0], {Name: "mathlib.minc", Source: linkedSource(t, "mathlib_edit1.minc")}}
	status, body = post(t, ts.URL+"/link/s1/patch", LinkPatchRequest{Unit: edited[1]})
	if status != http.StatusOK {
		t.Fatalf("patch mathlib: status %d: %s", status, body)
	}
	var patched LinkPatchResponse
	decodeInto(t, body, &patched)
	if !patched.PlanReused {
		t.Error("body-only mathlib edit: planReused=false, want true")
	}
	checkSearch("after body edit", edited)

	// Surface edit: renamed local + new function forces a plan rebuild.
	surfaced := []LinkUnit{{Name: "app.minc", Source: linkedSource(t, "app_edit1.minc")}, edited[1]}
	status, body = post(t, ts.URL+"/link/s1/patch", LinkPatchRequest{Unit: surfaced[0]})
	if status != http.StatusOK {
		t.Fatalf("patch app: status %d: %s", status, body)
	}
	decodeInto(t, body, &patched)
	if patched.PlanReused {
		t.Error("surface app edit: planReused=true, want rebuild")
	}
	checkSearch("after surface edit", surfaced)

	// Revert mathlib: earlier results replay from the shared cache.
	status, body = post(t, ts.URL+"/link/s1/patch", LinkPatchRequest{Unit: units[1]})
	if status != http.StatusOK {
		t.Fatalf("revert mathlib: status %d: %s", status, body)
	}
	checkSearch("after revert", []LinkUnit{surfaced[0], units[1]})

	st := getStats(t, ts.URL)
	if st.LinkSessions.Patches != 3 || st.LinkSessions.Searches != 4 {
		t.Errorf("linkSessions counters: %+v, want 3 patches / 4 searches", st.LinkSessions)
	}
	// Body edit and revert reuse the plan; the surface edit rebuilds it.
	if st.LinkSessions.PlanReuses != 2 || st.LinkSessions.PlanRebuilds != 1 {
		t.Errorf("linkSessions plan counters: %+v, want 2 reuses / 1 rebuild", st.LinkSessions)
	}
	// A lone session replays from its own memo; the shared cache records
	// only the solves (hits are cross-session, see the sharing test).
	if st.RelinkCache.Entries == 0 || st.RelinkCache.Misses == 0 {
		t.Errorf("relinkCache never populated: %+v", st.RelinkCache)
	}
}

// TestLinkSessionTuneParity cross-checks /link/{id}/tune against the cold
// lockstep autotuner before and after a patch.
func TestLinkSessionTuneParity(t *testing.T) {
	units := linkedUnits(t, "app.minc", "mathlib.minc")
	_, ts := newTestServer(t, Config{Jobs: 2})
	if status, body := post(t, ts.URL+"/link", LinkCreateRequest{
		ID: "tu", Units: units, DupPolicy: "rename",
	}); status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, body)
	}

	checkTune := func(step string, cur []LinkUnit) {
		t.Helper()
		status, body := post(t, ts.URL+"/link/tu/tune", LinkTuneRequest{Init: "os", Rounds: 3})
		if status != http.StatusOK {
			t.Fatalf("%s: tune status %d: %s", step, status, body)
		}
		var got LinkTuneResponse
		decodeInto(t, body, &got)
		want, err := coldLink(t, cur).Tune(link.TuneOptions{
			ShardOptions: coldShardOptions(), Rounds: 3, Init: link.InitOs,
		})
		if err != nil {
			t.Fatalf("%s: cold tune: %v", step, err)
		}
		if got.BestSize != want.Result.Size || got.InitSize != want.Result.InitSize ||
			got.FinalSize != want.Result.FinalSize || got.ConfigKey != want.Result.Config.Key() {
			t.Errorf("%s: tune response (init %d, best %d, final %d, key %s) disagrees with cold (%d, %d, %d, %s)",
				step, got.InitSize, got.BestSize, got.FinalSize, got.ConfigKey,
				want.Result.InitSize, want.Result.Size, want.Result.FinalSize, want.Result.Config.Key())
		}
		if len(got.Rounds) != len(want.Result.Rounds) {
			t.Errorf("%s: %d rounds, cold has %d", step, len(got.Rounds), len(want.Result.Rounds))
		}
	}

	checkTune("initial", units)
	edited := []LinkUnit{units[0], {Name: "mathlib.minc", Source: linkedSource(t, "mathlib_edit1.minc")}}
	if status, body := post(t, ts.URL+"/link/tu/patch", LinkPatchRequest{Unit: edited[1]}); status != http.StatusOK {
		t.Fatalf("patch: status %d: %s", status, body)
	}
	checkTune("after body edit", edited)

	if st := getStats(t, ts.URL); st.LinkSessions.Tunes != 2 {
		t.Errorf("linkSessions tunes = %d, want 2", st.LinkSessions.Tunes)
	}
}

// TestLinkErrorMatrix checks the documented status codes: 400 for bad
// parameters (including cycle objectives, which a relink session rejects
// by type), 404 for unknown session ids, 422 for parse and link failures.
func TestLinkErrorMatrix(t *testing.T) {
	units := linkedUnits(t, "app.minc", "mathlib.minc")
	_, ts := newTestServer(t, Config{Jobs: 2})
	if status, body := post(t, ts.URL+"/link", LinkCreateRequest{
		ID: "ok", Units: units, DupPolicy: "rename",
	}); status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, body)
	}

	cases := []struct {
		name string
		path string
		req  any
		want int
	}{
		{"missing id", "/link", LinkCreateRequest{Units: units, DupPolicy: "rename"}, http.StatusBadRequest},
		{"no units", "/link", LinkCreateRequest{ID: "x"}, http.StatusBadRequest},
		{"bad target", "/link", LinkCreateRequest{ID: "x", Units: units, Target: "mips", DupPolicy: "rename"}, http.StatusBadRequest},
		{"bad dup policy", "/link", LinkCreateRequest{ID: "x", Units: units, DupPolicy: "merge"}, http.StatusBadRequest},
		{"duplicate unit name", "/link", LinkCreateRequest{
			ID: "x", Units: []LinkUnit{units[0], units[0]}, DupPolicy: "rename",
		}, http.StatusBadRequest},
		{"empty unit source", "/link", LinkCreateRequest{
			ID: "x", Units: []LinkUnit{{Name: "a.minc"}},
		}, http.StatusBadRequest},
		{"unit parse error", "/link", LinkCreateRequest{
			ID: "x", Units: []LinkUnit{{Name: "bad.minc", Source: "func ("}},
		}, http.StatusUnprocessableEntity},
		{"duplicate export", "/link", LinkCreateRequest{
			ID: "x", Units: []LinkUnit{
				{Name: "a.minc", Source: "export func f(x) { return x; }"},
				{Name: "b.minc", Source: "export func f(x) { return x + 1; }"},
			},
		}, http.StatusUnprocessableEntity},
		{"patch unknown session", "/link/nope/patch", LinkPatchRequest{Unit: units[0]}, http.StatusNotFound},
		{"search unknown session", "/link/nope/search", LinkSearchRequest{}, http.StatusNotFound},
		{"tune unknown session", "/link/nope/tune", LinkTuneRequest{}, http.StatusNotFound},
		{"patch unknown unit", "/link/ok/patch", LinkPatchRequest{
			Unit: LinkUnit{Name: "ghost.minc", Source: "func g(x) { return x; }"},
		}, http.StatusUnprocessableEntity},
		{"patch parse error", "/link/ok/patch", LinkPatchRequest{
			Unit: LinkUnit{Name: "app.minc", Source: "func ("},
		}, http.StatusUnprocessableEntity},
		{"bad init", "/link/ok/tune", LinkTuneRequest{Init: "warm"}, http.StatusBadRequest},
		{"bad objective", "/link/ok/tune", LinkTuneRequest{Objective: "latency"}, http.StatusBadRequest},
		{"cycle objective", "/link/ok/tune", LinkTuneRequest{Objective: "cycles"}, http.StatusBadRequest},
		{"weighted objective", "/link/ok/tune", LinkTuneRequest{Objective: "weighted"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := post(t, ts.URL+tc.path, tc.req)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
	}

	// DELETE: once for 200, again for 404.
	del := func(id string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/link/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := del("ok"); got != http.StatusOK {
		t.Errorf("delete ok: status %d", got)
	}
	if got := del("ok"); got != http.StatusNotFound {
		t.Errorf("delete again: status %d, want 404", got)
	}
	if status, _ := post(t, ts.URL+"/link/ok/search", LinkSearchRequest{}); status != http.StatusNotFound {
		t.Errorf("search after delete: status %d, want 404", status)
	}
}

// TestLinkRegistryReplaceAndEvict exercises create-with-existing-id
// replacement and FIFO eviction at the session bound.
func TestLinkRegistryReplaceAndEvict(t *testing.T) {
	units := linkedUnits(t, "app.minc", "mathlib.minc")
	_, ts := newTestServer(t, Config{Jobs: 2, MaxLinkSessions: 2})

	create := func(id string) {
		t.Helper()
		if status, body := post(t, ts.URL+"/link", LinkCreateRequest{
			ID: id, Units: units, DupPolicy: "rename",
		}); status != http.StatusOK {
			t.Fatalf("create %s: status %d: %s", id, status, body)
		}
	}
	create("a")
	create("a") // replace, not a second slot
	create("b")
	st := getStats(t, ts.URL)
	if st.LinkSessions.Live != 2 || st.LinkSessions.Replaced != 1 || st.LinkSessions.Evicted != 0 {
		t.Fatalf("after replace: %+v, want live 2, replaced 1, evicted 0", st.LinkSessions)
	}

	create("c") // bound 2: evicts "a", the oldest
	st = getStats(t, ts.URL)
	if st.LinkSessions.Live != 2 || st.LinkSessions.Evicted != 1 {
		t.Fatalf("after eviction: %+v, want live 2, evicted 1", st.LinkSessions)
	}
	if status, _ := post(t, ts.URL+"/link/a/search", LinkSearchRequest{}); status != http.StatusNotFound {
		t.Errorf("evicted session a: search status %d, want 404", status)
	}
	for _, id := range []string{"b", "c"} {
		if status, _ := post(t, ts.URL+"/link/"+id+"/search", LinkSearchRequest{MaxSpace: 1 << 20}); status != http.StatusOK {
			t.Errorf("surviving session %s: search status %d", id, status)
		}
	}
}

// TestLinkCacheSharedAcrossSessions checks that two sessions over the same
// units share component results — and that disabling the cache changes
// counters but never bytes.
func TestLinkCacheSharedAcrossSessions(t *testing.T) {
	units := linkedUnits(t, "app.minc", "mathlib.minc")

	search := func(ts string, id string) []byte {
		t.Helper()
		status, body := post(t, ts+"/link/"+id+"/search", LinkSearchRequest{MaxSpace: 1 << 20})
		if status != http.StatusOK {
			t.Fatalf("search %s: status %d: %s", id, status, body)
		}
		return body
	}

	_, ts := newTestServer(t, Config{Jobs: 2})
	var bodies [][]byte
	for _, id := range []string{"one", "two"} {
		if status, body := post(t, ts.URL+"/link", LinkCreateRequest{
			ID: id, Units: units, DupPolicy: "rename",
		}); status != http.StatusOK {
			t.Fatalf("create %s: status %d: %s", id, status, body)
		}
		bodies = append(bodies, search(ts.URL, id))
	}
	// Identity apart from the echoed id: both sessions saw identical units.
	norm := func(b []byte, id string) []byte {
		return bytes.Replace(b, []byte(fmt.Sprintf(`"id":%q`, id)), []byte(`"id":"X"`), 1)
	}
	if !bytes.Equal(norm(bodies[0], "one"), norm(bodies[1], "two")) {
		t.Errorf("search bodies diverge across sessions:\n%s\n%s", bodies[0], bodies[1])
	}
	st := getStats(t, ts.URL)
	if st.RelinkCache.Hits == 0 || st.RelinkCache.Entries == 0 {
		t.Errorf("shared cache unused across sessions: %+v", st.RelinkCache)
	}

	// Differential oracle: -no-relink-cache must answer byte-identically.
	_, tsOff := newTestServer(t, Config{Jobs: 2, DisableRelinkCache: true})
	if status, body := post(t, tsOff.URL+"/link", LinkCreateRequest{
		ID: "one", Units: units, DupPolicy: "rename",
	}); status != http.StatusOK {
		t.Fatalf("create (cache off): status %d: %s", status, body)
	}
	if off := search(tsOff.URL, "one"); !bytes.Equal(off, bodies[0]) {
		t.Errorf("cache-off search body differs from cache-on:\n%s\n%s", off, bodies[0])
	}
	stOff := getStats(t, tsOff.URL)
	if stOff.RelinkCache.Hits != 0 || stOff.RelinkCache.Entries != 0 {
		t.Errorf("disabled cache reports activity: %+v", stOff.RelinkCache)
	}
}
