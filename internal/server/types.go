package server

import (
	"encoding/json"

	"optinline/internal/diag"
)

// JSON request/response schemas of the inlined service. Responses to the
// three work endpoints deliberately contain only *deterministic* fields —
// pure functions of the request — so that replaying a request yields a
// byte-identical body no matter how caches are warmed, how many clients
// run, or how the scheduler interleaves them. Volatile counters (cache
// hits, evaluation counts, queue depths) live in /stats instead.

// AnalyzeRequest asks for the interprocedural summary analysis of one
// translation unit: per-function summaries, the cross-function lints, and
// the per-site feature vectors of the SiteFeatures schema.
type AnalyzeRequest struct {
	Name    string `json:"name"`
	Source  string `json:"source"`
	Target  string `json:"target,omitempty"` // x86 (default) | wasm; echoed only
	Jobs    int    `json:"jobs,omitempty"`
	DelayMs int    `json:"delayMs,omitempty"`
}

// AnalyzeSite is one candidate call site with its feature vector
// (featureNames in the response names each slot).
type AnalyzeSite struct {
	Site     int       `json:"site"`
	Caller   string    `json:"caller"`
	Callee   string    `json:"callee"`
	Features []float64 `json:"features"`
}

// AnalyzeResponse reports the analysis. Everything in it is a pure
// function of the request: functions are in module order, findings and
// sites are sorted, and the summary cache can only change timing, never
// bytes.
type AnalyzeResponse struct {
	Name          string          `json:"name"`
	Target        string          `json:"target"`
	SchemaVersion int             `json:"schemaVersion"`
	FeatureNames  []string        `json:"featureNames"`
	Functions     json.RawMessage `json:"functions"`
	Findings      diag.List       `json:"findings"`
	Sites         []AnalyzeSite   `json:"sites"`
}

// CompileRequest asks for one translation unit to be compiled under an
// inlining strategy. Source is MinC or textual IR, dispatched on Name's
// extension (.minc or .ir) exactly like the CLIs' file loading.
type CompileRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Target string `json:"target,omitempty"` // x86 (default) | wasm
	Inline string `json:"inline,omitempty"` // none | os (default) | tune | optimal
	Rounds int    `json:"rounds,omitempty"` // autotuner rounds for inline=tune (default 4)
	// MaxSpace caps the recursive search space for inline=optimal;
	// 0 selects the server default.
	MaxSpace uint64 `json:"maxSpace,omitempty"`
	// Jobs is this request's worker budget, clamped to [1, server -jobs].
	// 0 selects 1: a service run should opt in to width explicitly.
	Jobs int `json:"jobs,omitempty"`
	// DelayMs injects synthetic latency before the work runs. Honored only
	// when the daemon was started with -allow-delay; used by load and
	// drain testing to make timing deterministic.
	DelayMs int `json:"delayMs,omitempty"`
}

// CompileResponse reports the strategy's outcome.
type CompileResponse struct {
	Name           string `json:"name"`
	Target         string `json:"target"`
	Inline         string `json:"inline"`
	Size           int    `json:"size"`
	InlinableSites int    `json:"inlinableSites"`
	InlinedSites   int    `json:"inlinedSites"`
	InlineSites    []int  `json:"inlineSites"`
	ConfigKey      string `json:"configKey"`
}

// SearchRequest asks for the exhaustive optimal search on one unit — the
// service form of `inlinesearch`.
type SearchRequest struct {
	Name     string `json:"name"`
	Source   string `json:"source"`
	Target   string `json:"target,omitempty"`
	MaxSpace uint64 `json:"maxSpace,omitempty"` // 0 selects the server default
	Jobs     int    `json:"jobs,omitempty"`
	DelayMs  int    `json:"delayMs,omitempty"`
}

// SearchResponse mirrors inlinesearch's report. When the recursive space
// exceeds MaxSpace the search does not run: Searched is false and only
// SpaceSize (the full tree size) plus the heuristic/no-inline figures are
// meaningful.
type SearchResponse struct {
	Name           string    `json:"name"`
	Target         string    `json:"target"`
	Searched       bool      `json:"searched"`
	SpaceSize      uint64    `json:"spaceSize"`
	NoInlineSize   int       `json:"noInlineSize"`
	HeuristicSize  int       `json:"heuristicSize"`
	OptimalSize    int       `json:"optimalSize,omitempty"`
	InlinableSites int       `json:"inlinableSites"`
	InlineSites    []int     `json:"inlineSites,omitempty"`
	ConfigKey      string    `json:"configKey,omitempty"`
	Agreement      [2][2]int `json:"agreement,omitempty"`
}

// TuneRequest asks for a round-based autotuning session — the service form
// of `inlinetune`.
type TuneRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Target string `json:"target,omitempty"`
	Init   string `json:"init,omitempty"` // clean | os (default)
	Rounds int    `json:"rounds,omitempty"`
	// Objective selects what the session minimizes: size (default),
	// weighted (bytes + lambda*cycles), or cycles. Cycle objectives profile
	// Entry(Args...) on the no-inline baseline once — the profile and its
	// pricer are cached and shared across requests — and reprice every
	// probe incrementally.
	Objective  string  `json:"objective,omitempty"`
	Lambda     float64 `json:"lambda,omitempty"`
	Entry      string  `json:"entry,omitempty"`      // profiled root; "" = entry
	Args       []int64 `json:"args,omitempty"`       // profiled arguments; nil = [7]
	Fuel       int64   `json:"fuel,omitempty"`       // profiling fuel; 0 = 20M
	CacheBytes int     `json:"cacheBytes,omitempty"` // modelled i-cache; 0 = default
	// NoCycleDelta prices every probe with the whole-module oracle instead
	// of incremental repricing. Differential knob: the response must be
	// byte-identical either way.
	NoCycleDelta bool `json:"noCycleDelta,omitempty"`
	Jobs         int  `json:"jobs,omitempty"`
	DelayMs      int  `json:"delayMs,omitempty"`
}

// TuneRound is one round's trace (paper Table 4 shape). Cycles is present
// for cycle-aware objectives only.
type TuneRound struct {
	Round      int   `json:"round"`
	Size       int   `json:"size"`
	Cycles     int64 `json:"cycles,omitempty"`
	Inlined    int   `json:"inlined"`
	NotInlined int   `json:"notInlined"`
	Toggles    int   `json:"toggles"`
}

// TuneResponse reports the session. The cycle fields are present for
// cycle-aware objectives only.
type TuneResponse struct {
	Name        string      `json:"name"`
	Target      string      `json:"target"`
	Init        string      `json:"init"`
	Objective   string      `json:"objective,omitempty"`
	Lambda      float64     `json:"lambda,omitempty"`
	InitSize    int         `json:"initSize"`
	InitCycles  int64       `json:"initCycles,omitempty"`
	BestSize    int         `json:"bestSize"`
	BestCycles  int64       `json:"bestCycles,omitempty"`
	InlineSites []int       `json:"inlineSites"`
	ConfigKey   string      `json:"configKey"`
	Rounds      []TuneRound `json:"rounds"`
}

// LinkUnit is one translation unit of a linked session: a named source
// text, dispatched on Name's extension exactly like the work endpoints.
type LinkUnit struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// LinkCreateRequest — POST /link — opens (or, reusing an id, replaces) an
// incremental re-link session over the units. The session holds the
// resolved plan; later patch/search/tune requests address it by id.
type LinkCreateRequest struct {
	ID string `json:"id"`
	// Units are linked in order; unit names must be unique (they are the
	// patch addresses).
	Units []LinkUnit `json:"units"`
	// Target is fixed at creation; every search/tune of the session prices
	// against it.
	Target string `json:"target,omitempty"` // x86 (default) | wasm
	// DupPolicy: error (default) rejects exported symbols defined in
	// several units; rename renames the copies apart.
	DupPolicy string `json:"dupPolicy,omitempty"`
	Jobs      int    `json:"jobs,omitempty"`
	DelayMs   int    `json:"delayMs,omitempty"`
}

// LinkPlanSummary is the deterministic shape of a session's resolved plan.
type LinkPlanSummary struct {
	TUs           int `json:"tus"`
	Functions     int `json:"functions"`
	Sites         int `json:"sites"`
	CrossTU       int `json:"crossTu"`
	Renamed       int `json:"renamed"`
	ExternalCalls int `json:"externalCalls"`
	Components    int `json:"components"`
}

// LinkCreateResponse confirms the session and reports its plan.
type LinkCreateResponse struct {
	ID     string          `json:"id"`
	Target string          `json:"target"`
	Plan   LinkPlanSummary `json:"plan"`
}

// LinkPatchRequest — POST /link/{id}/patch — swaps one unit's contents.
// The unit is addressed by Unit.Name, which must match an existing unit.
type LinkPatchRequest struct {
	Unit    LinkUnit `json:"unit"`
	Jobs    int      `json:"jobs,omitempty"`
	DelayMs int      `json:"delayMs,omitempty"`
}

// LinkPatchResponse reports the patch. PlanReused is deterministic: true
// exactly when the new contents expose the same link surface (names,
// exports, call spellings, globals) as the old, so only fingerprints moved.
type LinkPatchResponse struct {
	ID         string          `json:"id"`
	Unit       string          `json:"unit"`
	PlanReused bool            `json:"planReused"`
	Plan       LinkPlanSummary `json:"plan"`
}

// LinkSearchRequest — POST /link/{id}/search — runs the component-sharded
// optimal search over the session's current units. Components whose content
// key is already in the shared result cache replay without compiling;
// replay counters are on /stats, never in this body, which stays a pure
// function of the session contents.
type LinkSearchRequest struct {
	MaxSpace uint64 `json:"maxSpace,omitempty"` // per component; 0 selects the server default
	Jobs     int    `json:"jobs,omitempty"`
	DelayMs  int    `json:"delayMs,omitempty"`
}

// LinkComponentStat is one component's deterministic search statistics.
type LinkComponentStat struct {
	Index     int    `json:"index"`
	Funcs     int    `json:"funcs"`
	Sites     int    `json:"sites"`
	Space     uint64 `json:"space"`
	Capped    bool   `json:"capped,omitempty"`
	Inlined   int    `json:"inlined"`
	SizeDelta int    `json:"sizeDelta"`
}

// LinkSearchResponse mirrors inlinesearch's linked report. When any
// component's recursive space exceeds MaxSpace the search does not run:
// Searched is false and only the component spaces are meaningful.
type LinkSearchResponse struct {
	ID             string              `json:"id"`
	Target         string              `json:"target"`
	Searched       bool                `json:"searched"`
	SpaceTotal     uint64              `json:"spaceTotal"`
	NoInlineSize   int                 `json:"noInlineSize,omitempty"`
	OptimalSize    int                 `json:"optimalSize,omitempty"`
	InlinableSites int                 `json:"inlinableSites"`
	InlineSites    []int               `json:"inlineSites,omitempty"`
	ConfigKey      string              `json:"configKey,omitempty"`
	Components     []LinkComponentStat `json:"components"`
}

// LinkTuneRequest — POST /link/{id}/tune — runs the per-component lockstep
// autotuner over the session's current units. Only the size objective is
// cacheable per component; cycle objectives are rejected with 400.
type LinkTuneRequest struct {
	Init      string `json:"init,omitempty"` // clean | os (default)
	Rounds    int    `json:"rounds,omitempty"`
	Objective string `json:"objective,omitempty"` // size (default); others are 400
	Jobs      int    `json:"jobs,omitempty"`
	DelayMs   int    `json:"delayMs,omitempty"`
}

// LinkTuneComponent is one component's deterministic tuning statistics.
type LinkTuneComponent struct {
	Index   int `json:"index"`
	Funcs   int `json:"funcs"`
	Sites   int `json:"sites"`
	Inlined int `json:"inlined"`
}

// LinkTuneResponse reports the session's tuning trace.
type LinkTuneResponse struct {
	ID             string              `json:"id"`
	Target         string              `json:"target"`
	Init           string              `json:"init"`
	InitSize       int                 `json:"initSize"`
	BestSize       int                 `json:"bestSize"`
	FinalSize      int                 `json:"finalSize"`
	InlinableSites int                 `json:"inlinableSites"`
	InlineSites    []int               `json:"inlineSites"`
	ConfigKey      string              `json:"configKey"`
	Rounds         []TuneRound         `json:"rounds"`
	Components     []LinkTuneComponent `json:"components"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatsResponse is the /stats payload: the daemon's observability surface,
// aggregating the shared content cache, the per-module compiler pool, the
// job queue, and per-endpoint request counters.
type StatsResponse struct {
	UptimeSeconds float64    `json:"uptimeSeconds"`
	Draining      bool       `json:"draining"`
	Queue         queueStats `json:"queue"`

	Requests map[string]EndpointStats `json:"requests"`

	// FnCache is the process-wide content-addressed per-function cache
	// shared by every compiler the daemon ever builds.
	FnCache FnCacheStatsJSON `json:"fnCache"`

	// SummaryCache is the process-wide interprocedural summary cache
	// behind /analyze (all zero when the daemon disables it).
	SummaryCache SummaryCacheCounters `json:"summaryCache"`

	// Compilers tracks the per-module compiler pool (LRU over source hash).
	Compilers CompilerPoolStats `json:"compilers"`

	// Aggregates over every compiler ever built (live + retired).
	ConfigCache CacheCounters `json:"configCache"`
	FuncCache   CacheCounters `json:"funcCache"`
	Evaluations int64         `json:"evaluations"`
	Delta       DeltaCounters `json:"delta"`
	Prune       PruneCounters `json:"prune"`

	// CyclePricers tracks the cached baseline profiles behind cycle-aware
	// /tune objectives and aggregates their pricing counters.
	CyclePricers CyclePricerPoolStats `json:"cyclePricers"`

	// LinkSessions tracks the incremental re-link sessions behind /link and
	// aggregates their patch/search/tune counters (live + retired).
	LinkSessions LinkSessionPoolStats `json:"linkSessions"`

	// RelinkCache is the process-wide content-keyed component result cache
	// shared by every link session (all zero when the daemon disables it).
	RelinkCache RelinkCacheCounters `json:"relinkCache"`
}

// LinkSessionPoolStats reports the link-session registry and the
// aggregated link.RelinkStats of every session ever created.
type LinkSessionPoolStats struct {
	Live     int   `json:"live"`
	Created  int64 `json:"created"`
	Replaced int64 `json:"replaced"` // creations that displaced an existing id
	Evicted  int64 `json:"evicted"`

	Patches      int64 `json:"patches"`
	PlanReuses   int64 `json:"planReuses"`
	PlanRebuilds int64 `json:"planRebuilds"`
	Searches     int64 `json:"searches"`
	Tunes        int64 `json:"tunes"`
}

// RelinkCacheCounters mirrors link.ComponentCacheStats for the wire.
type RelinkCacheCounters struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// CyclePricerPoolStats reports the cycle-pricer pool: how many profiled
// baselines are cached, how often requests reused one, and the aggregated
// compile.CyclePricerStats of every pricer ever built.
type CyclePricerPoolStats struct {
	Live    int   `json:"live"` // profiles currently cached
	Built   int64 `json:"built"`
	Hits    int64 `json:"hits"`
	Evicted int64 `json:"evicted"`

	Repricings      int64 `json:"repricings"`
	FullEvals       int64 `json:"fullEvals"` // whole-module (oracle) evaluations
	ConfigCacheHits int64 `json:"configCacheHits"`
	ReplayEvents    int64 `json:"replayEvents"`
	CostCacheHits   int64 `json:"costCacheHits"`
	CostCacheMisses int64 `json:"costCacheMisses"`
}

// EndpointStats counts one endpoint's traffic.
type EndpointStats struct {
	Count    int64 `json:"count"`
	Errors   int64 `json:"errors"`   // 4xx/5xx except busy
	Busy     int64 `json:"busy"`     // 503 from the queue bound or drain
	Timeouts int64 `json:"timeouts"` // 504 after the request deadline
}

// FnCacheStatsJSON mirrors compile.FnCacheStats for the wire.
type FnCacheStatsJSON struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	DiskHits int64 `json:"diskHits"`
	Loaded   int64 `json:"loaded"`
	Corrupt  int64 `json:"corrupt"`
	Dupes    int64 `json:"dupes"`
	Stored   int64 `json:"stored"`
	Evicted  int64 `json:"evicted"`
	Syncs    int64 `json:"syncs"`
	Entries  int   `json:"entries"`
}

// SummaryCacheCounters mirrors interproc.Stats for the wire.
type SummaryCacheCounters struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int64 `json:"entries"`
}

// CompilerPoolStats reports the compiler LRU.
type CompilerPoolStats struct {
	Live    int   `json:"live"`
	Built   int64 `json:"built"`
	Hits    int64 `json:"hits"`
	Evicted int64 `json:"evicted"`
}

// CacheCounters is stats.CacheStats for the wire.
type CacheCounters struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// DeltaCounters is stats.DeltaStats for the wire.
type DeltaCounters struct {
	Evals      int64 `json:"evals"`
	DirtyFuncs int64 `json:"dirtyFuncs"`
}

// PruneCounters is search.PruneStats for the wire.
type PruneCounters struct {
	Enabled    bool  `json:"enabled"`
	Subtrees   int64 `json:"subtrees"`
	MemoHits   int64 `json:"memoHits"`
	MemoMisses int64 `json:"memoMisses"`
	BoundEvals int64 `json:"boundEvals"`
}
