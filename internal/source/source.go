// Package source loads program modules for the command-line tools: MinC
// source (.minc) through the frontend, textual IR (.ir) through the parser.
package source

import (
	"fmt"
	"os"
	"path/filepath"

	"optinline/internal/ir"
	"optinline/internal/lang"
)

// Load reads the file and compiles/parses it to an IR module based on its
// extension: ".minc" (MinC source) or ".ir" (textual IR).
func Load(path string) (*ir.Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromBytes(path, data)
}

// FromBytes compiles source held in memory, dispatching on the extension
// of name.
func FromBytes(name string, data []byte) (*ir.Module, error) {
	switch filepath.Ext(name) {
	case ".minc":
		return lang.Compile(name, string(data))
	case ".ir":
		return ir.Parse(name, string(data))
	default:
		return nil, fmt.Errorf("source: %s: unsupported extension (want .minc or .ir)", name)
	}
}
