package source

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadMinC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.minc")
	src := "export func main(x) { return x + 1; }"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("main") == nil {
		t.Fatal("main missing")
	}
}

func TestLoadIR(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ir")
	src := "export func @f(%x) {\nentry:\n  ret %x\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("f") == nil {
		t.Fatal("f missing")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/zzz.minc"); err == nil {
		t.Fatal("expected file error")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	os.WriteFile(path, []byte("x"), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("expected extension error")
	}
	bad := filepath.Join(dir, "bad.minc")
	os.WriteFile(bad, []byte("func ("), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFromBytes(t *testing.T) {
	if _, err := FromBytes("x.ir", []byte("garbage")); err == nil {
		t.Fatal("expected IR parse error")
	}
	m, err := FromBytes("x.minc", []byte("export func main() { return 7; }"))
	if err != nil || m.Func("main") == nil {
		t.Fatalf("FromBytes: %v", err)
	}
}
