package optinline

// End-to-end tests of the inlined daemon and the inlineload generator,
// driven through real binaries on a random port: the service must answer
// with exactly the numbers the batch CLIs print, survive a verified
// concurrent replay, and drain gracefully on SIGTERM. Skipped in -short
// mode (each run builds the tools).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"optinline/internal/server"
)

// buildTool compiles one cmd/ tool into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

// daemon wraps a running inlined process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	logs *bytes.Buffer
}

// startDaemon launches inlined on an ephemeral port and parses the
// listening address off its stderr contract line.
func startDaemon(t *testing.T, bin string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start inlined: %v", err)
	}
	d := &daemon{cmd: cmd, logs: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stderr)
	listenRE := regexp.MustCompile(`listening on http://(\S+)`)
	for sc.Scan() {
		line := sc.Text()
		d.logs.WriteString(line + "\n")
		if m := listenRE.FindStringSubmatch(line); m != nil {
			d.addr = m[1]
			break
		}
	}
	if d.addr == "" {
		t.Fatalf("inlined never printed its listen address; stderr:\n%s", d.logs)
	}
	go func() { // keep draining stderr so the child never blocks on a full pipe
		for sc.Scan() {
			d.logs.WriteString(sc.Text() + "\n")
		}
	}()
	return d
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

// searchCLIReport is what `inlinesearch file.minc` printed, parsed.
type searchCLIReport struct {
	noInline    int
	heuristic   int
	optimal     int
	inlined     int
	inlinable   int
	inlineSites []int
}

var (
	noInlineRE  = regexp.MustCompile(`no inlining:\s+(\d+) bytes`)
	heuristicRE = regexp.MustCompile(`-Os heuristic:\s+(\d+) bytes`)
	optimalRE   = regexp.MustCompile(`optimal:\s+(\d+) bytes, inlining (\d+) of (\d+) sites`)
	sitesRE     = regexp.MustCompile(`optimal inline sites: \[([0-9 ]*)\]`)
)

func parseSearchCLI(t *testing.T, out string) searchCLIReport {
	t.Helper()
	var rep searchCLIReport
	grab := func(re *regexp.Regexp, n int) []int {
		m := re.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("inlinesearch output missing %v:\n%s", re, out)
		}
		vals := make([]int, n)
		for i := 0; i < n; i++ {
			v, err := strconv.Atoi(m[i+1])
			if err != nil {
				t.Fatalf("parse %q: %v", m[i+1], err)
			}
			vals[i] = v
		}
		return vals
	}
	rep.noInline = grab(noInlineRE, 1)[0]
	rep.heuristic = grab(heuristicRE, 1)[0]
	opt := grab(optimalRE, 3)
	rep.optimal, rep.inlined, rep.inlinable = opt[0], opt[1], opt[2]
	m := sitesRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("inlinesearch output missing inline sites:\n%s", out)
	}
	for _, fld := range strings.Fields(m[1]) {
		v, err := strconv.Atoi(fld)
		if err != nil {
			t.Fatalf("parse site %q: %v", fld, err)
		}
		rep.inlineSites = append(rep.inlineSites, v)
	}
	return rep
}

// TestInlinedDaemonMatchesBatchCLI replays the example corpus through a
// real daemon and demands the same numbers `inlinesearch` prints when run
// directly on each file.
func TestInlinedDaemonMatchesBatchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon e2e test")
	}
	dir := t.TempDir()
	inlined := buildTool(t, dir, "inlined")
	cacheDir := filepath.Join(dir, "cache")
	d := startDaemon(t, inlined, "-cache-dir", cacheDir)

	files, err := filepath.Glob(filepath.Join("examples", "minc", "*.minc"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example files: %v", err)
	}
	for _, file := range files {
		cliOut, _ := runCLISplit(t, "./cmd/inlinesearch", file)
		want := parseSearchCLI(t, cliOut)

		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		status, body := postJSON(t, d.url("/search"), server.SearchRequest{
			Name: filepath.Base(file), Source: string(src), MaxSpace: 1 << 20,
		})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", file, status, body)
		}
		var resp server.SearchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s: bad JSON: %v", file, err)
		}
		if !resp.Searched {
			t.Fatalf("%s: daemon did not search", file)
		}
		if resp.NoInlineSize != want.noInline || resp.HeuristicSize != want.heuristic || resp.OptimalSize != want.optimal {
			t.Errorf("%s: daemon sizes (%d,%d,%d) != inlinesearch (%d,%d,%d)", file,
				resp.NoInlineSize, resp.HeuristicSize, resp.OptimalSize,
				want.noInline, want.heuristic, want.optimal)
		}
		if resp.InlinableSites != want.inlinable || len(resp.InlineSites) != want.inlined {
			t.Errorf("%s: daemon sites %d/%d != inlinesearch %d/%d", file,
				len(resp.InlineSites), resp.InlinableSites, want.inlined, want.inlinable)
		}
		for i, site := range want.inlineSites {
			if i >= len(resp.InlineSites) || resp.InlineSites[i] != site {
				t.Errorf("%s: daemon inline sites %v != inlinesearch %v", file, resp.InlineSites, want.inlineSites)
				break
			}
		}
	}

	// The daemon's store must have persisted records with the v2 magic.
	// (SIGTERM-free check: appends are incremental, not exit-time.)
	data, err := os.ReadFile(filepath.Join(cacheDir, "fncache-v2.log"))
	if err != nil {
		t.Fatalf("cache store not written: %v", err)
	}
	if !bytes.HasPrefix(data, []byte("OPTFNC2\n")) {
		t.Fatalf("cache store has wrong magic: %q", data[:16])
	}

	// Graceful exit flushes and the process leaves with status 0.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("inlined exit after SIGTERM: %v\nstderr:\n%s", err, d.logs)
	}
}

// TestInlinedLoadReplayE2E drives the real inlineload binary against a
// real daemon — the acceptance scenario at CI scale: concurrent clients,
// byte-identity across clients, sizes equal to single-threaded local runs.
func TestInlinedLoadReplayE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon e2e test")
	}
	dir := t.TempDir()
	inlined := buildTool(t, dir, "inlined")
	inlineload := buildTool(t, dir, "inlineload")
	d := startDaemon(t, inlined, "-cache-dir", filepath.Join(dir, "cache"))

	cmd := exec.Command(inlineload, "-addr", d.addr, "-smoke")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("inlineload -smoke: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "verify: all responses byte-identical") {
		t.Fatalf("inlineload did not report verification:\n%s", out)
	}

	// /stats after the replay: counters must be present and balanced.
	resp, err := http.Get(d.url("/stats"))
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	resp.Body.Close()
	if st.Queue.Busy != 0 || st.Queue.Queued != 0 {
		t.Errorf("after replay: busy=%d queued=%d, want 0/0", st.Queue.Busy, st.Queue.Queued)
	}
	if st.Compilers.Built == 0 || st.FnCache.Stored == 0 {
		t.Errorf("after replay: compilers.built=%d fnCache.stored=%d, want > 0", st.Compilers.Built, st.FnCache.Stored)
	}
}

// TestInlinedGracefulDrain checks the two-phase SIGTERM story on a real
// process: the in-flight request finishes with 200, /healthz and new work
// answer 503 while it does, and the daemon exits cleanly.
func TestInlinedGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon e2e test")
	}
	dir := t.TempDir()
	inlined := buildTool(t, dir, "inlined")
	d := startDaemon(t, inlined, "-allow-delay")

	src, err := os.ReadFile(filepath.Join("examples", "minc", "fib.minc"))
	if err != nil {
		t.Fatalf("read example: %v", err)
	}

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		status, body := postJSON(t, d.url("/compile"), server.CompileRequest{
			Name: "fib.minc", Source: string(src), Inline: "none", DelayMs: 1500,
		})
		inflight <- result{status, body}
	}()

	// Wait until the slow request is admitted, then pull the trigger.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(d.url("/stats"))
		if err != nil {
			t.Fatalf("GET /stats: %v", err)
		}
		var st server.StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.Queue.Busy > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	// While the in-flight delay runs, the daemon must be refusing traffic.
	var sawHealth503, sawWork503 bool
	for time.Now().Before(deadline) && (!sawHealth503 || !sawWork503) {
		if resp, err := http.Get(d.url("/healthz")); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				sawHealth503 = true
			}
		}
		payload, _ := json.Marshal(server.CompileRequest{Name: "fib.minc", Source: string(src), Inline: "none"})
		if resp, err := http.Post(d.url("/compile"), "application/json", bytes.NewReader(payload)); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				sawWork503 = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawHealth503 || !sawWork503 {
		t.Errorf("during drain: healthz503=%v work503=%v, want both true", sawHealth503, sawWork503)
	}

	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", r.status, r.body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(r.body, &cr); err != nil || cr.Size == 0 {
		t.Fatalf("in-flight response malformed: %s", r.body)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("inlined exit after drain: %v\nstderr:\n%s", err, d.logs)
	}
	if !strings.Contains(d.logs.String(), "drained") {
		t.Errorf("daemon never logged the drain; stderr:\n%s", d.logs)
	}
}

// TestInlinedOfflineCompaction exercises `inlined -compact` on a store a
// previous daemon wrote: the compacted log must reload with zero
// duplicates and corruption, and re-compacting is byte-stable.
func TestInlinedOfflineCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon e2e test")
	}
	dir := t.TempDir()
	inlined := buildTool(t, dir, "inlined")
	cacheDir := filepath.Join(dir, "cache")
	d := startDaemon(t, inlined, "-cache-dir", cacheDir)

	src, err := os.ReadFile(filepath.Join("examples", "minc", "fib.minc"))
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	status, body := postJSON(t, d.url("/search"), server.SearchRequest{
		Name: "fib.minc", Source: string(src), MaxSpace: 1 << 20,
	})
	if status != http.StatusOK {
		t.Fatalf("search: status %d: %s", status, body)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("inlined exit: %v", err)
	}

	storePath := filepath.Join(cacheDir, "fncache-v2.log")
	compact := func() []byte {
		out, err := exec.Command(inlined, "-compact", "-cache-dir", cacheDir).CombinedOutput()
		if err != nil {
			t.Fatalf("inlined -compact: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "compacted") {
			t.Fatalf("compaction did not report:\n%s", out)
		}
		data, err := os.ReadFile(storePath)
		if err != nil {
			t.Fatalf("read store: %v", err)
		}
		return data
	}
	first := compact()
	second := compact()
	if !bytes.Equal(first, second) {
		t.Error("compaction is not byte-stable across runs")
	}
	if len(first) <= len("OPTFNC2\n") {
		t.Errorf("compacted store suspiciously small: %d bytes", len(first))
	}
}
