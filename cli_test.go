package optinline

// End-to-end tests of the command-line tools, driven through `go run`.
// They are skipped in -short mode (each invocation compiles the tool).

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// runCLISplit keeps stdout and stderr apart, for byte-identity assertions
// on stdout while stderr carries run-dependent cache statistics.
func runCLISplit(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %v: %v\n%s%s", args, err, outBuf.String(), errBuf.String())
	}
	return outBuf.String(), errBuf.String()
}

func TestMinccCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	out := runCLI(t, "./cmd/mincc", "-inline", "os", "-run", "trace", "-arg", "4", "testdata/matrixsum.minc")
	for _, want := range []string{"inlinable calls", ".text", "trace([4]) ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("mincc output missing %q:\n%s", want, out)
		}
	}
	// All strategies must report the same program behaviour.
	ret := func(mode string) string {
		o := runCLI(t, "./cmd/mincc", "-inline", mode, "-run", "trace", "-arg", "4", "testdata/matrixsum.minc")
		i := strings.Index(o, "trace([4]) = ")
		if i < 0 {
			t.Fatalf("no run output for %s:\n%s", mode, o)
		}
		return strings.Fields(o[i+len("trace([4]) = "):])[0]
	}
	base := ret("none")
	for _, mode := range []string{"os", "tune", "optimal"} {
		if got := ret(mode); got != base {
			t.Fatalf("mode %s changed behaviour: %s vs %s", mode, got, base)
		}
	}
}

func TestMinccListingAndOutline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	out := runCLI(t, "./cmd/mincc", "-inline", "tune", "-outline", "-S", "testdata/matrixsum.minc")
	if !strings.Contains(out, "; target x86") {
		t.Fatalf("listing missing:\n%s", out)
	}
}

func TestInlineSearchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	out := runCLI(t, "./cmd/inlinesearch", "-dot", "testdata/matrixsum.minc")
	for _, want := range []string{"naive space", "recursively partitioned", "optimal:", "agreement", "digraph"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inlinesearch output missing %q:\n%s", want, out)
		}
	}
}

func TestInlineTuneCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	out := runCLI(t, "./cmd/inlinetune", "-rounds", "2", "-groups", "-incremental", "testdata/matrixsum.minc")
	for _, want := range []string{"clean slate", "-Os initialized", "final:", "compilations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inlinetune output missing %q:\n%s", want, out)
		}
	}
}

// TestMinccFnCacheColdVsWarm: a warm -cache-dir rerun and the -no-fncache
// oracle must produce byte-identical stdout; the warm run's -cache-stats
// line must show that it reused the persisted entries.
func TestMinccFnCacheColdVsWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	dir := t.TempDir()
	argv := func(extra ...string) []string {
		base := []string{"./cmd/mincc", "-inline", "optimal", "-S"}
		return append(append(base, extra...), "testdata/matrixsum.minc")
	}
	oracle, _ := runCLISplit(t, argv("-no-fncache")...)
	cold, coldErr := runCLISplit(t, argv("-cache-dir", dir, "-cache-stats")...)
	warm, warmErr := runCLISplit(t, argv("-cache-dir", dir, "-cache-stats")...)
	if cold != oracle {
		t.Fatalf("cold fncache stdout differs from -no-fncache oracle:\n--- oracle\n%s--- cold\n%s", oracle, cold)
	}
	if warm != cold {
		t.Fatalf("warm -cache-dir rerun stdout differs from cold run:\n--- cold\n%s--- warm\n%s", cold, warm)
	}
	if !strings.Contains(coldErr, "stored") {
		t.Fatalf("cold run stats never reported a store:\n%s", coldErr)
	}
	if !strings.Contains(warmErr, "loaded") || !strings.Contains(warmErr, "0 misses") {
		t.Fatalf("warm run did not reuse the persisted cache:\n%s", warmErr)
	}
}

func TestInlineBenchCLIList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	out := runCLI(t, "./cmd/inlinebench", "-list")
	for _, want := range []string{"fig1", "fig19", "tab4", "sqlite-case", "mlgo-case"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inlinebench -list missing %q:\n%s", want, out)
		}
	}
}

func TestInlineBenchCLISingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	out := runCLI(t, "./cmd/inlinebench", "-exp", "fig3", "-scale", "0.15")
	if !strings.Contains(out, "log2") || !strings.Contains(out, "parest") {
		t.Fatalf("inlinebench fig3 output:\n%s", out)
	}
}
