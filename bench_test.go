package optinline

// Benchmark harness: one Benchmark per table and figure of the paper's
// evaluation (see DESIGN.md section 3 for the experiment index), plus
// micro-benchmarks of the underlying machinery and the ablations DESIGN.md
// calls out. The experiment benches run the same code paths as
// cmd/inlinebench but on a scaled-down corpus so `go test -bench=.`
// finishes in minutes; regenerate the full-scale numbers with the CLI.

import (
	"fmt"
	"testing"

	"optinline/internal/analysis/interproc"
	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/experiments"
	"optinline/internal/graph"
	"optinline/internal/heuristic"
	"optinline/internal/inline"
	"optinline/internal/interp"
	"optinline/internal/ir"
	"optinline/internal/mlheur"
	"optinline/internal/search"
	"optinline/internal/workload"
)

// benchExperiment rebuilds a fresh harness every iteration so the measured
// work is real (harnesses memoize aggressively).
func benchExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness(cfg)
		res, err := h.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

var (
	cheapCfg      = experiments.Config{Scale: 0.3, Rounds: 2, ExhaustiveCap: 1 << 10}
	exhaustiveCfg = experiments.Config{Scale: 0.2, Rounds: 2, ExhaustiveCap: 1 << 10}
	tuneCfg       = experiments.Config{Scale: 0.2, Rounds: 2, ExhaustiveCap: 1 << 8}
	caseCfg       = experiments.Config{Scale: 0.1, Rounds: 1, ExhaustiveCap: 1 << 8}
)

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1", cheapCfg) }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3", cheapCfg) }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1", cheapCfg) }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7", exhaustiveCfg) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2", exhaustiveCfg) }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8", exhaustiveCfg) }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9", exhaustiveCfg) }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10", tuneCfg) }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11", tuneCfg) }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12", tuneCfg) }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "tab3", tuneCfg) }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13", tuneCfg) }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14", tuneCfg) }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15", tuneCfg) }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16", tuneCfg) }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17", tuneCfg) }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "tab4", tuneCfg) }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18", tuneCfg) }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19", tuneCfg) }

func BenchmarkLLVMCase(b *testing.B)   { benchExperiment(b, "llvm-case", caseCfg) }
func BenchmarkSQLiteCase(b *testing.B) { benchExperiment(b, "sqlite-case", caseCfg) }

func BenchmarkMLGoCase(b *testing.B)    { benchExperiment(b, "mlgo-case", exhaustiveCfg) }
func BenchmarkOutlineCase(b *testing.B) { benchExperiment(b, "outline-case", tuneCfg) }
func BenchmarkPerfCase(b *testing.B)    { benchExperiment(b, "perf-case", tuneCfg) }

// --- micro-benchmarks of the machinery --------------------------------------

// benchFile returns a moderately sized generated translation unit.
func benchFile(edges int) workload.File {
	p := workload.Profile{
		Name: "bench", Files: 1, TotalEdges: edges,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.35,
		RecProb: 0.08, BranchProb: 0.45, MultiRootPct: 0.12,
	}
	return workload.Generate(p).Files[0]
}

// BenchmarkCompileAndMeasureSize measures one full pipeline evaluation
// (clone, inline, optimize, DFE, encode) — the unit of cost every search
// and tuning step pays.
func BenchmarkCompileAndMeasureSize(b *testing.B) {
	f := benchFile(40)
	comp := compile.New(f.Module, codegen.TargetX86)
	hc := heuristic.OsConfig(comp.Module(), comp.Graph())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := comp.Build(hc)
		if err != nil {
			b.Fatal(err)
		}
		if codegen.ModuleSize(m, codegen.TargetX86) == 0 {
			b.Fatal("zero size")
		}
	}
}

func BenchmarkInlineApply(b *testing.B) {
	f := benchFile(40)
	g := callgraph.Build(f.Module)
	cfg := callgraph.NewConfig()
	for i, e := range g.Edges {
		if i%2 == 0 {
			cfg.Set(e.Site, true)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := f.Module.Clone()
		if err := inline.Apply(m, cfg, inline.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModuleClone(b *testing.B) {
	f := benchFile(60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Module.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
}

func BenchmarkHeuristicDecisions(b *testing.B) {
	f := benchFile(60)
	g := callgraph.Build(f.Module)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if heuristic.OsConfig(f.Module, g).InlineCount() < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkCallGraphBuild(b *testing.B) {
	f := benchFile(80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(callgraph.Build(f.Module).Edges) == 0 {
			b.Fatal("no edges")
		}
	}
}

func BenchmarkBridges(b *testing.B) {
	f := benchFile(80)
	mg := callgraph.Build(f.Module).Undirected()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Bridges()
	}
}

func BenchmarkOptimalSearch(b *testing.B) {
	// A file small enough to certify each iteration.
	var f workload.File
	for e := 8; ; e++ {
		f = benchFile(e)
		c := compile.New(f.Module, codegen.TargetX86)
		if n, capped := search.RecursiveSpaceSize(c.Graph(), 1<<10); !capped && n >= 64 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp := compile.New(f.Module, codegen.TargetX86)
		if _, ok := search.Optimal(comp, search.Options{}); !ok {
			b.Fatal("aborted")
		}
	}
}

func BenchmarkAutotuneRound(b *testing.B) {
	f := benchFile(40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp := compile.New(f.Module, codegen.TargetX86)
		res := autotune.CleanSlate(comp, autotune.Options{Rounds: 1})
		if res.Size <= 0 {
			b.Fatal("no size")
		}
	}
}

// BenchmarkParallelScaling exercises the embarrassingly parallel tuner at
// different worker counts (DESIGN.md ablation 5).
func BenchmarkParallelScaling(b *testing.B) {
	f := benchFile(80)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp := compile.New(f.Module, codegen.TargetX86)
				autotune.CleanSlate(comp, autotune.Options{Rounds: 1, Workers: workers})
			}
		})
	}
}

// BenchmarkSearchSequentialVsParallel measures the exhaustive search at
// different worker counts on the same translation unit. A fresh compiler
// per iteration keeps the caches cold, so the measured work is the full
// recursive search. Recorded in BENCH_search.json.
func BenchmarkSearchSequentialVsParallel(b *testing.B) {
	// Pick the generated unit with the largest recursive space that still
	// fits the cap; the scan is bounded so a hostile generator can't hang
	// the benchmark.
	var f workload.File
	var best uint64
	for e := 10; e <= 48; e++ {
		cand := benchFile(e)
		c := compile.New(cand.Module, codegen.TargetX86)
		if n, capped := search.RecursiveSpaceSize(c.Graph(), 1<<12); !capped && n > best {
			f, best = cand, n
		}
	}
	if best == 0 {
		b.Fatal("no searchable unit under the cap")
	}
	b.Logf("unit: %d-evaluation recursive space", best)
	for _, jobs := range []int{-1, 2, 4, 8} {
		name := fmt.Sprintf("jobs=%d", jobs)
		if jobs < 0 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				comp := compile.New(f.Module, codegen.TargetX86)
				if _, ok := search.Optimal(comp, search.Options{Workers: jobs, MaxSpace: 1 << 12}); !ok {
					b.Fatal("aborted")
				}
			}
		})
	}
}

// chainModule builds a call chain fn0 -> fn1 -> ... -> fn_n — the paper's
// Figure 5 path shape, and the shape deep call stacks give real units. Its
// recursive space grows fast with n while staying bridge-decomposable, so
// the branch-and-bound layer has maximal structure to share: sub-paths
// recur all over the tree, and contraction order collapses in the memo key.
func chainModule(n int) *ir.Module {
	m := ir.NewModule("chain")
	m.AddGlobal("state")
	for i := n; i >= 0; i-- {
		b := ir.NewFunction(fmt.Sprintf("fn%d", i), 1, i == 0)
		x := b.Param(0)
		v := b.Bin(ir.Mul, x, x)
		v = b.Bin(ir.Add, v, x)
		if i < n {
			r := b.Call(fmt.Sprintf("fn%d", i+1), v)
			v = b.Bin(ir.Add, v, r)
		}
		if i%3 == 0 {
			b.StoreG("state", v)
		}
		b.Ret(v)
		m.AddFunc(b.Fn)
	}
	m.AssignSites()
	return m
}

// BenchmarkOptimalPrunedVsExhaustive measures the branch-and-bound search
// (component memo + admissible bounds, the default) against the exhaustive
// recursion (-no-prune) on the same translation unit: a 16-call chain whose
// recursive space holds 732 tree evaluations (>= 500). Both searches return
// byte-identical optima; the reported evals metric counts real configuration
// evaluations (lower is cheaper), memo-hit-pct is the component memo's hit
// rate, and pruned-subtrees the admissible bound's cuts on the pruned run.
// Recorded in BENCH_search.json.
func BenchmarkOptimalPrunedVsExhaustive(b *testing.B) {
	m := chainModule(16)
	{
		c := compile.New(m, codegen.TargetX86)
		space, capped := search.RecursiveSpaceSize(c.Graph(), 1<<13)
		if capped || space < 500 {
			b.Fatalf("chain unit space = %d (capped=%v), need uncapped >= 500", space, capped)
		}
		b.Logf("unit: %d-evaluation recursive space", space)
	}
	for _, mode := range []struct {
		name    string
		noPrune bool
	}{{"pruned", false}, {"exhaustive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var evals int64
			var stats search.PruneStats
			for i := 0; i < b.N; i++ {
				comp := compile.New(m, codegen.TargetX86)
				res, ok := search.Optimal(comp, search.Options{NoPrune: mode.noPrune, MaxSpace: 1 << 13})
				if !ok {
					b.Fatal("aborted")
				}
				evals = res.Evaluations
				stats = res.Prune
			}
			b.ReportMetric(float64(evals), "evals")
			if lookups := stats.MemoHits + stats.MemoMisses; lookups > 0 {
				b.ReportMetric(100*float64(stats.MemoHits)/float64(lookups), "memo-hit-pct")
				b.ReportMetric(float64(stats.Subtrees), "pruned-subtrees")
			}
		})
	}
}

// BenchmarkSizeCachedVsUncached measures an autotuner-shaped workload — a
// base configuration plus every single-site toggle — with the per-component
// memo cache on and off. With the cache, toggling one site only recompiles
// that site's connected component; without it, every probe pays a full
// whole-module pipeline. Recorded in BENCH_search.json.
func BenchmarkSizeCachedVsUncached(b *testing.B) {
	// The memo path pays off when the candidate graph has several
	// components (a toggle recompiles one component, not the module), so
	// scan the generator for the most fragmented unit — the realistic
	// shape: real translation units hold many unrelated call clusters.
	var f workload.File
	bestComps := 0
	for e := 30; e <= 70; e += 4 {
		p := workload.Profile{
			Name: "bench-memo", Files: 4, TotalEdges: e,
			ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.35,
			RecProb: 0.08, BranchProb: 0.45, MultiRootPct: 0.3,
		}
		for _, cand := range workload.Generate(p).Files {
			g := callgraph.Build(cand.Module)
			if len(g.Edges) < 20 {
				continue
			}
			comps := 0
			for _, comp := range g.Undirected().ConnectedComponents() {
				if len(comp) > 1 {
					comps++
				}
			}
			if comps > bestComps {
				f, bestComps = cand, comps
			}
		}
	}
	if bestComps == 0 {
		b.Fatal("no multi-component unit found")
	}
	b.Logf("unit: %d edge-bearing components", bestComps)
	probe := compile.New(f.Module, codegen.TargetX86)
	sites := probe.Graph().Sites()
	base := heuristic.OsConfig(probe.Module(), probe.Graph())
	configs := []*callgraph.Config{base}
	for _, s := range sites {
		c := base.Clone()
		c.Set(s, !base.Inline(s))
		configs = append(configs, c)
	}
	run := func(b *testing.B, memo bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			comp := compile.New(f.Module, codegen.TargetX86)
			comp.SetMemoize(memo)
			for _, cfg := range configs {
				if comp.Size(cfg) <= 0 {
					b.Fatal("bad size")
				}
			}
		}
	}
	b.Run("memoized", func(b *testing.B) { run(b, true) })
	b.Run("uncached", func(b *testing.B) { run(b, false) })
}

// BenchmarkFnCacheColdVsWarm measures the content-addressed per-function
// cache's cross-run payoff on an autotuner-shaped probe set (a base
// configuration plus every single-site toggle). cold: every iteration
// starts from an empty content cache, the way a first `inlinebench` run
// does. warm: iterations share one pre-populated cache, the way a
// -cache-dir rerun (or the next file of a corpus with shared structure)
// does — every closure compilation becomes a hash lookup. Sizes are
// identical in both modes; recorded in BENCH_search.json.
func BenchmarkFnCacheColdVsWarm(b *testing.B) {
	p := workload.Profile{
		Name: "bench-fncache", Files: 1, TotalEdges: 60,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.35,
		RecProb: 0.08, BranchProb: 0.45, MultiRootPct: 0.2,
	}
	f := workload.Generate(p).Files[0]
	probe := compile.New(f.Module, codegen.TargetX86)
	base := heuristic.OsConfig(probe.Module(), probe.Graph())
	configs := []*callgraph.Config{callgraph.NewConfig(), base}
	for _, s := range probe.Graph().Sites() {
		c := base.Clone()
		c.Set(s, !base.Inline(s))
		configs = append(configs, c)
	}
	b.Logf("unit: %d functions, %d probe configurations", len(probe.Module().Funcs), len(configs))
	run := func(b *testing.B, shared *compile.FnCache) {
		b.ReportAllocs()
		var last *compile.Compiler
		for i := 0; i < b.N; i++ {
			cache := shared
			if cache == nil {
				cache = compile.NewFnCache()
			}
			comp := compile.NewWithOptions(f.Module, codegen.TargetX86, compile.Options{FnCache: cache})
			for _, cfg := range configs {
				if comp.Size(cfg) <= 0 {
					b.Fatal("bad size")
				}
			}
			last = comp
		}
		st := last.FnCache().Stats()
		if total := st.Hits + st.Misses; total > 0 {
			b.ReportMetric(100*float64(st.Hits)/float64(total), "hit-pct")
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, nil) })
	warm := compile.NewFnCache()
	seed := compile.NewWithOptions(f.Module, codegen.TargetX86, compile.Options{FnCache: warm})
	for _, cfg := range configs {
		seed.Size(cfg)
	}
	b.Run("warm", func(b *testing.B) { run(b, warm) })
}

// BenchmarkAutotuneRoundDeltaVsFull measures one single-edge-toggle
// autotuner round (Algorithm 3, n+2 compilations) at the Table 2 workload's
// scale — a translation unit carrying the SPEC-profile corpus' aggregate
// candidate-edge budget — with the incremental delta engine on and off.
// On: each probe recompiles only the toggled edge's dirty closure against
// the round's Sized handle. Off: each probe is a whole-configuration memo
// walk over every function. Results are byte-identical; only the time
// differs, and the gap widens with module size (the walk is O(functions)
// per probe, the delta O(dirty closure)). Recorded in BENCH_search.json.
func BenchmarkAutotuneRoundDeltaVsFull(b *testing.B) {
	edges := 0
	for _, p := range workload.SPECProfiles() {
		edges += p.TotalEdges
	}
	p := workload.Profile{
		Name: "tab2-aggregate", Files: 1, TotalEdges: edges,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.35,
		RecProb: 0.08, BranchProb: 0.45, MultiRootPct: 0.2,
	}
	f := workload.Generate(p).Files[0]
	{
		c := compile.New(f.Module, codegen.TargetX86)
		b.Logf("unit: %d functions, %d candidate edges", len(c.Module().Funcs), len(c.Graph().Edges))
	}
	for _, mode := range []struct {
		name  string
		delta bool
	}{{"delta", true}, {"full", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				comp := compile.New(f.Module, codegen.TargetX86)
				comp.SetDelta(mode.delta)
				res := autotune.CleanSlate(comp, autotune.Options{Rounds: 1})
				if res.Size <= 0 {
					b.Fatal("no size")
				}
			}
		})
	}
}

// BenchmarkCycleRepriceVsReinterp measures what making runtime a
// first-class objective costs per probe: pricing single-toggle
// configurations of a sqlite-profile unit (the largest generated unit that
// the interpreter finishes within fuel) three ways. "delta" builds a cycle
// pricer over one baseline profile and reprices each toggle incrementally
// (dirty-closure walk + i-cache replay); "oracle" prices each toggle with
// the whole-module model evaluation (-no-cycledelta); "reinterp" is the
// naive alternative the pricer exists to avoid — rebuild the module and
// re-run the interpreter for every probe. The one-off profile collection
// runs outside the timed loop in every mode, and delta/oracle agree with
// each other bit-for-bit; reinterp additionally re-executes loops the
// model prices statically, so it is the semantic ground truth, not a
// byte-identical oracle. Recorded in BENCH_search.json.
func BenchmarkCycleRepriceVsReinterp(b *testing.B) {
	p := workload.Profile{
		Name: "sqlite", Files: 1, TotalEdges: 600,
		ConstArgProb: 0.4, HubProb: 0.3, BigBodyProb: 0.25,
		LoopProb: 0.3, RecProb: 0.08, BranchProb: 0.5, MultiRootPct: 0.12,
	}
	f := workload.Generate(p).Files[0]
	comp := compile.New(f.Module, codegen.TargetX86)
	built, err := comp.Build(callgraph.NewConfig())
	if err != nil {
		b.Fatal(err)
	}
	_, prof, err := interp.Collect(built, "entry", []int64{7}, interp.Options{Fuel: 20_000_000})
	if err != nil {
		b.Fatal(err)
	}
	edges := comp.Graph().Edges
	var sites []int
	for i := 0; i < len(edges) && len(sites) < 16; i += len(edges) / 16 {
		sites = append(sites, edges[i].Site)
	}
	b.Logf("unit: %d functions, %d candidate edges, %d profiled frame events, %d probes",
		len(comp.Module().Funcs), len(edges), len(prof.Events), len(sites))

	newPricer := func(delta bool) *compile.CyclePricer {
		pr, err := comp.NewCyclePricer(prof, compile.CycleOptions{})
		if err != nil {
			b.Fatal(err)
		}
		pr.SetCycleDelta(delta)
		return pr
	}
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr := newPricer(true)
			base := pr.Priced(callgraph.NewConfig())
			var sum int64
			for _, s := range sites {
				sum += pr.CyclesDelta(base, []int{s})
			}
			if sum <= 0 {
				b.Fatal("no cycles")
			}
		}
	})
	b.Run("oracle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr := newPricer(false)
			var sum int64
			for _, s := range sites {
				cfg := callgraph.NewConfig()
				cfg.Set(s, true)
				sum += pr.Cycles(cfg)
			}
			if sum <= 0 {
				b.Fatal("no cycles")
			}
		}
	})
	b.Run("reinterp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum int64
			for _, s := range sites {
				cfg := callgraph.NewConfig()
				cfg.Set(s, true)
				bm, err := comp.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := interp.Run(bm, "entry", []int64{7}, interp.Options{
					Fuel:   20_000_000,
					SizeOf: codegen.SizeOf(bm, codegen.TargetX86),
				})
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Cycles
			}
			if sum <= 0 {
				b.Fatal("no cycles")
			}
		}
	})
}

// BenchmarkConfigKeyBitset measures the configuration-identity operations
// the evaluation hot paths lean on: the compile cache's binary CacheKey,
// the Hash + Equal pair, a cached Key, and a cold Key after invalidation.
// Recorded in BENCH_search.json.
func BenchmarkConfigKeyBitset(b *testing.B) {
	cfg := callgraph.NewConfig()
	for s := 1; s <= 192; s += 2 {
		cfg.Set(s, true)
	}
	other := cfg.Clone()
	b.Run("cache-key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cfg.CacheKey() == "" {
				b.Fatal("empty cache key")
			}
		}
	})
	b.Run("hash-equal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cfg.Hash() != other.Hash() || !cfg.Equal(other) {
				b.Fatal("identity mismatch")
			}
		}
	})
	b.Run("key-cached", func(b *testing.B) {
		b.ReportAllocs()
		cfg.Key()
		for i := 0; i < b.N; i++ {
			if cfg.Key() == "" {
				b.Fatal("empty key")
			}
		}
	})
	b.Run("key-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg.Clone()
			c.Set(2, true).Set(2, false) // mutate: drops the cached key
			if c.Key() == "" {
				b.Fatal("empty key")
			}
		}
	})
}

// BenchmarkAblationPartition compares the paper's partition-edge heuristic
// against a structure-blind baseline by explored-configuration count
// (DESIGN.md ablation 1). The reported metric configs/op is the search
// space size — lower is better.
func BenchmarkAblationPartition(b *testing.B) {
	mg := &graph.Multigraph{N: 15}
	for i := 0; i < 14; i++ {
		mg.Edges = append(mg.Edges, graph.Edge{ID: i + 1, U: i, V: i + 1})
	}
	gwrap := pathWrap{mg}
	b.Run("paper-heuristic", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			n, _ = search.SpaceSizeWith(gwrap, 0, search.SelectPartitionEdge)
		}
		b.ReportMetric(float64(n), "configs/op")
	})
	b.Run("first-edge", func(b *testing.B) {
		var n uint64
		for i := 0; i < b.N; i++ {
			n, _ = search.SpaceSizeWith(gwrap, 0, search.SelectFirstEdge)
		}
		b.ReportMetric(float64(n), "configs/op")
	})
}

type pathWrap struct{ mg *graph.Multigraph }

func (p pathWrap) Undirected() *graph.Multigraph { return p.mg }

// BenchmarkAblationGroupToggles compares the plain autotuner with the
// group-callee extension (paper §5.2.1) on a hub-heavy unit. The reported
// bytes/op metric is the tuned size — lower is better.
func BenchmarkAblationGroupToggles(b *testing.B) {
	p := workload.Profile{
		Name: "bench-hubs", Files: 1, TotalEdges: 50,
		ConstArgProb: 0.3, HubProb: 0.5, BigBodyProb: 0.2, LoopProb: 0.3,
		RecProb: 0, BranchProb: 0.4, MultiRootPct: 0.1,
	}
	f := workload.Generate(p).Files[0]
	run := func(b *testing.B, grouped bool) {
		var size int
		for i := 0; i < b.N; i++ {
			comp := compile.New(f.Module, codegen.TargetX86)
			res := autotune.TuneExtended(comp, nil, autotune.ExtOptions{
				Options: autotune.Options{Rounds: 2}, GroupCallees: grouped,
			})
			size = res.Size
		}
		b.ReportMetric(float64(size), "tuned-bytes")
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("grouped", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationIncremental compares full rounds with incremental
// re-tuning (paper §6). The evals/op metric counts real compilations —
// lower is cheaper.
func BenchmarkAblationIncremental(b *testing.B) {
	f := benchFile(60)
	run := func(b *testing.B, incr bool) {
		var evals int64
		for i := 0; i < b.N; i++ {
			comp := compile.New(f.Module, codegen.TargetX86)
			autotune.TuneExtended(comp, nil, autotune.ExtOptions{
				Options: autotune.Options{Rounds: 4}, Incremental: incr,
			})
			evals = comp.Evaluations()
		}
		b.ReportMetric(float64(evals), "evals")
	}
	b.Run("full-rounds", func(b *testing.B) { run(b, false) })
	b.Run("incremental", func(b *testing.B) { run(b, true) })
}

func BenchmarkInterpreter(b *testing.B) {
	src := `
export func main(n) {
  var acc = 0;
  for (var i = 0; i < n; i = i + 1) {
    acc = acc + i * i % 7;
  }
  return acc;
}
`
	p, err := Compile("bench.minc", src)
	if err != nil {
		b.Fatal(err)
	}
	d := p.NoInlining()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(d, "main", 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIRParse(b *testing.B) {
	f := benchFile(40)
	text := f.Module.String()
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ir.Parse("bench", text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpICache(b *testing.B) {
	f := benchFile(20)
	m := f.Module
	sizeOf := codegen.SizeOf(m, codegen.TargetX86)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := interp.Run(m, "entry", []int64{5}, interp.Options{SizeOf: sizeOf, Fuel: 10_000_000})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSiteFeatureExtraction measures the mlheur feature-extraction
// throughput over the full 20-profile SPEC-shaped corpus: one interproc
// summary analysis per file (the Extractor), then a SiteFeatures lookup
// per candidate edge. "scratch" recomputes every file's summaries;
// "shared-cache" reuses one content-addressed summary cache across files
// and iterations (the daemon's steady state). sites/op reports how many
// feature vectors one iteration produces.
func BenchmarkSiteFeatureExtraction(b *testing.B) {
	type unit struct {
		m *ir.Module
		g *callgraph.Graph
	}
	var units []unit
	sites := 0
	for _, p := range workload.SPECProfiles() {
		for _, f := range workload.Generate(p).Files {
			f.Module.AssignSites()
			g := callgraph.Build(f.Module)
			units = append(units, unit{f.Module, g})
			sites += len(g.Edges)
		}
	}
	extractAll := func(cache *interproc.Cache) int {
		total := 0
		for _, u := range units {
			x := mlheur.NewExtractor(u.m, u.g, cache)
			for _, e := range u.g.Edges {
				fv := x.Extract(e)
				total += int(fv[0]) // defeat dead-code elimination
			}
		}
		return total
	}
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			extractAll(nil)
		}
		b.ReportMetric(float64(sites), "sites/op")
	})
	b.Run("shared-cache", func(b *testing.B) {
		b.ReportAllocs()
		cache := interproc.NewCache()
		extractAll(cache) // warm the cache outside the timed region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			extractAll(cache)
		}
		b.ReportMetric(float64(sites), "sites/op")
	})
}
