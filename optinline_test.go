package optinline

import (
	"strings"
	"testing"
)

const demo = `
global tally;

func helper(x) {
  if (x == 0) { return 1; }
  return x * x + 3;
}

func wrapper(x) {
  return helper(x) + 1;
}

func heavy(x) {
  var acc = x;
  for (var i = 0; i < 5; i = i + 1) {
    acc = acc * 3 + i ^ 7;
    acc = acc >> 1;
  }
  return acc;
}

export func main(n) {
  var a = wrapper(n);
  var b = helper(0);
  var c = heavy(n) + heavy(a);
  tally = a + b + c;
  output tally;
  return tally;
}
`

func compileDemo(t *testing.T) *Program {
	t.Helper()
	p, err := Compile("demo.minc", demo)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileAndCounts(t *testing.T) {
	p := compileDemo(t)
	if p.NumCallSites() != 5 {
		t.Fatalf("call sites = %d, want 5", p.NumCallSites())
	}
	if p.NumFunctions() != 4 {
		t.Fatalf("functions = %d, want 4", p.NumFunctions())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("x.minc", "func broken("); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Compile("x.txt", "whatever"); err == nil {
		t.Fatal("expected unsupported-extension error")
	}
}

func TestSizesOrdering(t *testing.T) {
	p := compileDemo(t)
	opt, ok := p.Optimal(1 << 16)
	if !ok {
		t.Fatal("search aborted")
	}
	if opt.Size > p.HeuristicSize() || opt.Size > p.NoInlineSize() {
		t.Fatalf("optimal %d worse than heuristic %d or no-inline %d",
			opt.Size, p.HeuristicSize(), p.NoInlineSize())
	}
	tuned := p.Autotune(TuneOptions{Rounds: 4})
	if tuned.Size > p.HeuristicSize() {
		t.Fatalf("autotuner %d worse than heuristic %d", tuned.Size, p.HeuristicSize())
	}
	if tuned.Size < opt.Size {
		t.Fatal("autotuner beat the certified optimum")
	}
}

func TestSpaceAccounting(t *testing.T) {
	p := compileDemo(t)
	sp := p.Space(0)
	if sp.CallSites != 5 || sp.NaiveLog2 != 5 {
		t.Fatalf("space: %+v", sp)
	}
	if sp.Recursive == 0 || sp.RecursiveOver {
		t.Fatalf("recursive count: %+v", sp)
	}
	capped := p.Space(1)
	if !capped.RecursiveOver {
		t.Fatal("cap not reported")
	}
}

func TestRunPreservedAcrossDecisions(t *testing.T) {
	p := compileDemo(t)
	base, err := p.Run(p.NoInlining(), "main", 6)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := p.Run(p.Heuristic(), "main", 6)
	if err != nil {
		t.Fatal(err)
	}
	tuned := p.Autotune(TuneOptions{Rounds: 2})
	tr, err := p.Run(tuned.Decisions, "main", 6)
	if err != nil {
		t.Fatal(err)
	}
	if base.Ret != heur.Ret || base.Ret != tr.Ret {
		t.Fatalf("return values diverge: %d %d %d", base.Ret, heur.Ret, tr.Ret)
	}
	if base.Outputs != heur.Outputs || base.Outputs != tr.Outputs {
		t.Fatal("output counts diverge")
	}
	// Inlining removes dynamic calls.
	if heur.DynCalls >= base.DynCalls {
		t.Fatalf("heuristic inlining should cut calls: %d vs %d", heur.DynCalls, base.DynCalls)
	}
}

func TestDecisionsIntrospection(t *testing.T) {
	p := compileDemo(t)
	h := p.Heuristic()
	if len(h.InlinedSites()) == 0 {
		t.Fatal("heuristic inlined nothing")
	}
	dot := h.DOT("demo")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "solid") {
		t.Fatalf("DOT output:\n%s", dot)
	}
	if len(p.NoInlining().InlinedSites()) != 0 {
		t.Fatal("clean slate not clean")
	}
}

func TestListingAndIR(t *testing.T) {
	p := compileDemo(t)
	l, err := p.Listing(p.Heuristic())
	if err != nil || !strings.Contains(l, "main:") {
		t.Fatalf("listing: %v\n%s", err, l)
	}
	irText, err := p.IR(p.Heuristic())
	if err != nil || !strings.Contains(irText, "export func @main") {
		t.Fatalf("IR: %v", err)
	}
}

func TestWASMTargetDiffers(t *testing.T) {
	x86, err := CompileFor("demo.minc", demo, TargetX86)
	if err != nil {
		t.Fatal(err)
	}
	wasm, err := CompileFor("demo.minc", demo, TargetWASM)
	if err != nil {
		t.Fatal(err)
	}
	if x86.NoInlineSize() == wasm.NoInlineSize() {
		t.Fatal("targets should produce different sizes")
	}
}

func TestTuneRoundsReported(t *testing.T) {
	p := compileDemo(t)
	res := p.Autotune(TuneOptions{Rounds: 3, Init: InitHeuristic})
	if len(res.Rounds) == 0 || res.Compilations == 0 {
		t.Fatalf("rounds/compilations not reported: %+v", res)
	}
	for _, r := range res.Rounds {
		if r.Inlined+r.NotInlined != p.NumCallSites() {
			t.Fatalf("round counts wrong: %+v", r)
		}
	}
}

func TestIRRoundTripThroughFacade(t *testing.T) {
	p := compileDemo(t)
	text, err := p.IR(p.NoInlining())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile("demo.ir", text)
	if err != nil {
		t.Fatalf("re-parse of emitted IR failed: %v", err)
	}
	if q.NoInlineSize() != p.NoInlineSize() {
		t.Fatal("size changed across IR round trip")
	}
}
