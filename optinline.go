// Package optinline is the public face of the optimal-function-inlining
// toolkit, a reproduction of "Understanding and Exploiting Optimal Function
// Inlining" (Theodoridis, Grosser, Su — ASPLOS 2022).
//
// It compiles MinC source (or textual IR) to an internal SSA representation
// and exposes the paper's machinery over it: a deterministic binary-size
// metric, an LLVM-`-Os`-style inlining heuristic as the baseline, the
// recursively partitioned exhaustive search for *optimal* inlining, and the
// local autotuner that approaches the optimum with n+2 compilations per
// round.
//
// Quick start:
//
//	p, err := optinline.Compile("demo.minc", src)
//	base := p.HeuristicSize()
//	tuned := p.Autotune(optinline.TuneOptions{Rounds: 4})
//	fmt.Printf("-Os %d bytes -> tuned %d bytes\n", base, tuned.Size)
package optinline

import (
	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/interp"
	"optinline/internal/search"
	"optinline/internal/source"
)

// Target selects the code-size model.
type Target int

// Available size models. TargetX86 models a CISC encoding with expensive
// call sequences; TargetWASM models a compact stack encoding with cheap
// calls (where eager inlining tends to inflate binaries).
const (
	TargetX86 Target = iota
	TargetWASM
)

func (t Target) internal() codegen.Target {
	if t == TargetWASM {
		return codegen.TargetWASM
	}
	return codegen.TargetX86
}

// Program is a compiled translation unit ready for inlining exploration.
// All methods are safe for concurrent use.
type Program struct {
	comp *compile.Compiler
}

// Compile builds a Program from source text. The filename's extension
// selects the frontend: ".minc" for MinC source, ".ir" for textual IR.
// The X86 size model is used; see CompileFor.
func Compile(filename, src string) (*Program, error) {
	return CompileFor(filename, src, TargetX86)
}

// CompileFor is Compile with an explicit size-model target.
func CompileFor(filename, src string, target Target) (*Program, error) {
	m, err := source.FromBytes(filename, []byte(src))
	if err != nil {
		return nil, err
	}
	return &Program{comp: compile.New(m, target.internal())}, nil
}

// LoadFile reads and compiles a file from disk.
func LoadFile(path string) (*Program, error) {
	m, err := source.Load(path)
	if err != nil {
		return nil, err
	}
	return &Program{comp: compile.New(m, codegen.TargetX86)}, nil
}

// NumCallSites returns the number of inlinable call sites (the paper's
// inlining candidates).
func (p *Program) NumCallSites() int { return len(p.comp.Graph().Edges) }

// NumFunctions returns the number of functions in the unit.
func (p *Program) NumFunctions() int { return len(p.comp.Graph().Nodes) }

// Decisions is an inlining configuration: the paper's assignment of
// {inline, no-inline} to every candidate call site.
type Decisions struct {
	p   *Program
	cfg *callgraph.Config
}

// NoInlining returns the clean-slate configuration (nothing inlined).
func (p *Program) NoInlining() Decisions {
	return Decisions{p: p, cfg: callgraph.NewConfig()}
}

// Heuristic returns the decisions of the built-in LLVM-`-Os`-style
// heuristic — the "state of the art" baseline of the paper.
func (p *Program) Heuristic() Decisions {
	return Decisions{p: p, cfg: heuristic.OsConfig(p.comp.Module(), p.comp.Graph())}
}

// InlinedSites returns the call-site IDs labeled inline, ascending.
func (d Decisions) InlinedSites() []int { return d.cfg.InlineSites() }

// Size compiles the unit under these decisions and returns the .text size
// in bytes. Results are memoized per configuration.
func (d Decisions) Size() int { return d.p.comp.Size(d.cfg) }

// DOT renders the call graph with these decisions in Graphviz syntax
// (solid = inlined, dashed = not), in the style of the paper's figures.
func (d Decisions) DOT(title string) string { return d.p.comp.Graph().DOT(title, d.cfg) }

// NoInlineSize returns the size with inlining disabled.
func (p *Program) NoInlineSize() int { return p.NoInlining().Size() }

// HeuristicSize returns the size under the -Os-style heuristic.
func (p *Program) HeuristicSize() int { return p.Heuristic().Size() }

// SearchSpace describes the size of the inlining search space of the unit.
type SearchSpace struct {
	CallSites     int     // candidate edges; naive space is 2^CallSites
	NaiveLog2     float64 // log2 of the naive space
	Recursive     uint64  // evaluations in the recursively partitioned space
	RecursiveOver bool    // true if Recursive hit the counting cap
}

// Space computes the search-space accounting of Section 3, counting the
// recursively partitioned space up to limit evaluations (0 = unbounded).
func (p *Program) Space(limit uint64) SearchSpace {
	g := p.comp.Graph()
	n, over := search.RecursiveSpaceSize(g, limit)
	return SearchSpace{
		CallSites:     len(g.Edges),
		NaiveLog2:     search.NaiveSpaceLog2(g),
		Recursive:     n,
		RecursiveOver: over,
	}
}

// OptimalResult is the outcome of the exhaustive search.
type OptimalResult struct {
	Decisions   Decisions
	Size        int
	Evaluations int64 // real compilations performed
	SpaceSize   uint64
}

// Optimal exhaustively searches the recursively partitioned space
// (Algorithms 1 and 2 of the paper) and returns an optimal configuration.
// ok is false when the space exceeds maxSpace evaluations (0 = unbounded).
func (p *Program) Optimal(maxSpace uint64) (OptimalResult, bool) {
	res, ok := search.Optimal(p.comp, search.Options{MaxSpace: maxSpace})
	if !ok {
		return OptimalResult{SpaceSize: res.SpaceSize}, false
	}
	return OptimalResult{
		Decisions:   Decisions{p: p, cfg: res.Config},
		Size:        res.Size,
		Evaluations: res.Evaluations,
		SpaceSize:   res.SpaceSize,
	}, true
}

// TuneOptions configures the autotuner.
type TuneOptions struct {
	// Rounds of local tuning; 0 means 1. Each round costs n+2 compilations.
	Rounds int
	// Workers bounds parallel per-edge evaluations; 0 = GOMAXPROCS.
	Workers int
	// Init selects the starting point(s).
	Init InitMode
	// GroupCallees enables the paper's Section 5.2.1 extension: per
	// internal multi-caller callee, additionally test inlining all of its
	// call sites at once (captures group-DCE wins local toggles miss).
	GroupCallees bool
	// Incremental enables the paper's Section 6 scalability extension:
	// rounds after the first only re-tune edges adjacent to the previous
	// round's changes.
	Incremental bool
}

// InitMode selects the autotuner's starting configuration.
type InitMode int

// Autotuner starting points: both (best of the two runs, the paper's
// recommended mode), clean slate only, or heuristic-initialized only.
const (
	InitBoth InitMode = iota
	InitClean
	InitHeuristic
)

// RoundReport mirrors the paper's Table 4 rows.
type RoundReport struct {
	Round      int
	Size       int
	Inlined    int
	NotInlined int
}

// TuneResult is the outcome of an autotuning session.
type TuneResult struct {
	Decisions Decisions
	Size      int
	// Rounds traces the session that produced the best configuration.
	Rounds []RoundReport
	// Compilations is the number of real compilations performed.
	Compilations int64
}

// Autotune runs the paper's local autotuner (Algorithm 3 and variants).
func (p *Program) Autotune(opt TuneOptions) TuneResult {
	opts := autotune.Options{Rounds: opt.Rounds, Workers: opt.Workers}
	tune := func(init *callgraph.Config) autotune.Result {
		if opt.GroupCallees || opt.Incremental {
			return autotune.TuneExtended(p.comp, init, autotune.ExtOptions{
				Options:      opts,
				GroupCallees: opt.GroupCallees,
				Incremental:  opt.Incremental,
			})
		}
		return autotune.Tune(p.comp, init, opts)
	}
	var res autotune.Result
	switch opt.Init {
	case InitClean:
		res = tune(nil)
	case InitHeuristic:
		res = tune(p.Heuristic().cfg)
	default:
		clean := tune(nil)
		inited := tune(p.Heuristic().cfg)
		if clean.Size <= inited.Size {
			res = clean
		} else {
			res = inited
		}
	}
	out := TuneResult{
		Decisions:    Decisions{p: p, cfg: res.Config},
		Size:         res.Size,
		Compilations: p.comp.Evaluations(),
	}
	for _, r := range res.Rounds {
		out.Rounds = append(out.Rounds, RoundReport{
			Round: r.Round, Size: r.Size, Inlined: r.Inlined, NotInlined: r.NotInlined,
		})
	}
	return out
}

// RunResult is the observable outcome and cost model of an execution.
type RunResult struct {
	Ret      int64
	Outputs  int
	Steps    int64
	Cycles   int64
	DynCalls int64
}

// Run compiles the unit under the given decisions and interprets the named
// exported function with the cycle model enabled.
func (p *Program) Run(d Decisions, entry string, args ...int64) (RunResult, error) {
	m, err := p.comp.Build(d.cfg)
	if err != nil {
		return RunResult{}, err
	}
	res, err := interp.Run(m, entry, args, interp.Options{
		SizeOf: codegen.SizeOf(m, p.comp.Target()),
	})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Ret:      res.Ret,
		Outputs:  res.OutputLen,
		Steps:    res.Steps,
		Cycles:   res.Cycles,
		DynCalls: res.DynCalls,
	}, nil
}

// Listing returns the pseudo-assembly listing of the unit compiled under
// the given decisions.
func (p *Program) Listing(d Decisions) (string, error) {
	m, err := p.comp.Build(d.cfg)
	if err != nil {
		return "", err
	}
	return codegen.Listing(m, p.comp.Target()), nil
}

// IR returns the optimized textual IR of the unit under the decisions.
func (p *Program) IR(d Decisions) (string, error) {
	m, err := p.comp.Build(d.cfg)
	if err != nil {
		return "", err
	}
	return m.String(), nil
}
