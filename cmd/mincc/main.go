// Command mincc compiles a MinC source file (or textual IR) down to the
// toy ISA and reports code size. It exposes the inlining strategies of the
// library: none, the -Os-style heuristic, the local autotuner, or the
// exhaustive optimum.
//
// Usage:
//
//	mincc [flags] file.minc
//	mincc -link [flags] a.minc b.minc ...
//
//	-link                          link all argument files into one module
//	                               (LTO-style) before inlining: cross-file
//	                               calls become candidates, file-local name
//	                               collisions are renamed apart
//	-link-dup error|rename         duplicate exported symbol policy for -link
//	-relink script                 with -inline optimal: replay an edit script
//	                               (patch <tu> <path> / search lines) against
//	                               an incremental re-link session; unchanged
//	                               components replay their cached optimum
//	-no-relink                     with -relink: cold full link at every step
//	                               (differential oracle — stdout is identical)
//	-inline none|os|tune|optimal   inlining strategy (default os)
//	-target x86|wasm               size model (default x86)
//	-S                             print the pseudo-assembly listing
//	-emit-ir                       print the optimized IR
//	-run <entry>                   interpret entry after compiling
//	-arg N                         integer argument for -run (repeatable)
//	-rounds N                      autotuner rounds for -inline tune
//	-check                         checked compilation: verify IR invariants
//	                               after every inline step and opt pass
//	-no-delta                      disable the incremental delta-evaluation
//	                               engine for -inline tune|optimal
//	-no-prune                      disable the branch-and-bound layer for
//	                               -inline optimal (differential oracle)
//	-no-fncache                    disable the content-addressed per-function
//	                               compile cache (differential oracle)
//	-cache-dir d                   persist the per-function content cache in
//	                               directory d across runs
//	-cache-stats                   print content-cache counters to stderr
//	-cpuprofile f                  write a CPU profile to f
//	-memprofile f                  write a heap profile to f at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/interp"
	"optinline/internal/ir"
	"optinline/internal/link"
	"optinline/internal/outline"
	"optinline/internal/search"
	"optinline/internal/source"
)

type intList []int64

func (l *intList) String() string { return fmt.Sprint(*l) }
func (l *intList) Set(s string) error {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mincc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inlineMode = flag.String("inline", "os", "inlining strategy: none|os|tune|optimal")
		targetName = flag.String("target", "x86", "size model: x86|wasm")
		listing    = flag.Bool("S", false, "print pseudo-assembly listing")
		emitIR     = flag.Bool("emit-ir", false, "print optimized IR")
		entry      = flag.String("run", "", "interpret this entry function after compiling")
		rounds     = flag.Int("rounds", 1, "autotuner rounds for -inline tune")
		doOutline  = flag.Bool("outline", false, "run the size outliner after inlining")
		check      = flag.Bool("check", false, "checked compilation: verify IR invariants after every inline step and opt pass")
		noDelta    = flag.Bool("no-delta", false, "disable the incremental delta-evaluation engine (differential oracle)")
		noPrune    = flag.Bool("no-prune", false, "disable the branch-and-bound search layer for -inline optimal (differential oracle)")
		noFnCache  = flag.Bool("no-fncache", false, "disable the content-addressed per-function cache (differential oracle)")
		cacheDir   = flag.String("cache-dir", "", "persist the per-function content cache in this directory")
		cacheStats = flag.Bool("cache-stats", false, "print content-cache counters to stderr")
		doLink     = flag.Bool("link", false, "link all argument files into one module before inlining")
		linkDup    = flag.String("link-dup", "error", "with -link: duplicate exported symbol policy: error|rename")
		relink     = flag.String("relink", "", "replay an edit script against an incremental re-link session (-inline optimal only)")
		noRelink   = flag.Bool("no-relink", false, "with -relink: cold full link at every step (differential oracle)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
		args       intList
	)
	flag.Var(&args, "arg", "integer argument for -run (repeatable)")
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mincc: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mincc: -memprofile:", err)
			}
		}()
	}
	if *doLink || *relink != "" {
		if flag.NArg() == 0 {
			return fmt.Errorf("usage: mincc -link [flags] a.minc b.minc ...")
		}
	} else if flag.NArg() != 1 {
		return fmt.Errorf("usage: mincc [flags] file.minc")
	}
	target := codegen.TargetX86
	switch *targetName {
	case "x86":
	case "wasm":
		target = codegen.TargetWASM
	default:
		return fmt.Errorf("unknown target %q", *targetName)
	}
	if *relink != "" {
		if *inlineMode != "optimal" {
			return fmt.Errorf("-relink caches per-component optima; it requires -inline optimal (got -inline %s)", *inlineMode)
		}
		dup, err := parseDupPolicy(*linkDup)
		if err != nil {
			return err
		}
		fncache, err := compile.OpenFnCache(*cacheDir)
		if err != nil {
			return err
		}
		return runRelinkCC(*relink, flag.Args(), target, dup, fncache, *cacheDir,
			*check, *noDelta, *noPrune, *noFnCache, *noRelink, *cacheStats)
	}

	var mod *ir.Module
	if *doLink {
		dup, err := parseDupPolicy(*linkDup)
		if err != nil {
			return err
		}
		if mod, err = link.Link(fileTUs(flag.Args()), link.Options{DupExported: dup}); err != nil {
			return err
		}
	} else {
		var err error
		if mod, err = source.Load(flag.Arg(0)); err != nil {
			return err
		}
	}
	fncache, err := compile.OpenFnCache(*cacheDir)
	if err != nil {
		return err
	}
	comp := compile.NewWithOptions(mod, target, compile.Options{Check: *check, FnCache: fncache})
	if *noDelta {
		comp.SetDelta(false)
	}
	if *noFnCache {
		comp.SetFnCache(false)
	}
	g := comp.Graph()

	var cfg *callgraph.Config
	switch *inlineMode {
	case "none":
		cfg = callgraph.NewConfig()
	case "os":
		cfg = heuristic.OsConfig(comp.Module(), g)
	case "tune":
		init := heuristic.OsConfig(comp.Module(), g)
		best, _, _ := autotune.Combined(comp, init, autotune.Options{Rounds: *rounds})
		cfg = best.Config
	case "optimal":
		res, ok := search.Optimal(comp, search.Options{MaxSpace: 1 << 22, NoPrune: *noPrune})
		if !ok {
			return fmt.Errorf("search space too large for exhaustive search (%d+ evaluations); use -inline tune", res.SpaceSize)
		}
		cfg = res.Config
	default:
		return fmt.Errorf("unknown inline mode %q", *inlineMode)
	}

	built, err := comp.Build(cfg)
	if err != nil {
		return err
	}
	if cerr := comp.CheckFailure(); cerr != nil {
		// A search/tune strategy hit an invariant violation on some
		// configuration along the way, even if the final build succeeded.
		return cerr
	}
	if *doOutline {
		st := outline.Module(built, outline.Options{Target: target})
		if st.FunctionsCreated > 0 {
			fmt.Printf("outliner: %d functions extracted, %d calls inserted\n",
				st.FunctionsCreated, st.CallsInserted)
		}
	}
	size := codegen.ModuleSize(built, target)
	label := flag.Arg(0)
	if *doLink {
		label = fmt.Sprintf("linked(%d files)", flag.NArg())
	}
	fmt.Printf("%s: %d inlinable calls, %d inlined, .text %d bytes (%s, -inline %s)\n",
		label, len(g.Edges), cfg.InlineCount(), size, target, *inlineMode)
	if *cacheDir != "" {
		if err := fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "mincc:", err)
		}
	}
	if *cacheStats {
		fmt.Fprintf(os.Stderr, "fn content cache: %v\n", fncache.Stats())
	}

	if *emitIR {
		fmt.Println(built.String())
	}
	if *listing {
		fmt.Println(codegen.Listing(built, target))
	}
	if *entry != "" {
		res, err := interp.Run(built, *entry, args, interp.Options{
			SizeOf: codegen.SizeOf(built, target),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s(%v) = %d  [%d steps, %d cycles, %d outputs]\n",
			*entry, []int64(args), res.Ret, res.Steps, res.Cycles, res.OutputLen)
	}
	return nil
}

func parseDupPolicy(name string) (link.DupPolicy, error) {
	switch name {
	case "error":
		return link.DupExportedError, nil
	case "rename":
		return link.DupExportedRename, nil
	}
	return 0, fmt.Errorf("-link-dup: unknown policy %q (want error or rename)", name)
}

func fileTUs(files []string) []link.TU {
	tus := make([]link.TU, 0, len(files))
	for _, path := range files {
		path := path
		tus = append(tus, link.LazyTU(path, func() (*ir.Module, error) {
			return source.Load(path)
		}))
	}
	return tus
}

// runRelinkCC replays a -relink edit script: patch steps swap one unit's
// contents, search steps print the mincc one-line summary of the linked
// optimum — computed from the search result alone, without materializing
// the linked module. Warm mode drives an incremental link.Session;
// -no-relink re-links and re-searches from scratch at every step, and the
// two stdouts are byte-identical (the ci.sh gate diffs them).
func runRelinkCC(script string, files []string, target codegen.Target, dup link.DupPolicy,
	fncache *compile.FnCache, cacheDir string,
	check, noDelta, noPrune, noFnCache, noRelink, cacheStats bool) error {
	scriptData, err := os.ReadFile(script)
	if err != nil {
		return fmt.Errorf("-relink: %w", err)
	}
	ops, err := link.ParseEditScript(scriptData)
	if err != nil {
		return fmt.Errorf("-relink %s: %w", script, err)
	}
	scriptDir := filepath.Dir(script)

	tus := fileTUs(files)
	var sess *link.Session
	cur := append([]link.TU(nil), tus...) // -no-relink: current contents
	if !noRelink {
		sess, err = link.NewSession(tus, link.SessionOptions{Link: link.Options{DupExported: dup}})
		if err != nil {
			return err
		}
	} else if _, err := link.New(cur, link.Options{DupExported: dup}); err != nil {
		return err
	}

	opts := link.SearchOptions{
		ShardOptions: link.ShardOptions{
			Target:  target,
			Compile: compile.Options{Check: check, FnCache: fncache},
			Configure: func(c *compile.Compiler) {
				if noDelta {
					c.SetDelta(false)
				}
				if noFnCache {
					c.SetFnCache(false)
				}
			},
		},
		MaxSpace: 1 << 22,
		NoPrune:  noPrune,
	}
	for step, op := range ops {
		switch op.Verb {
		case "patch":
			path := op.Path
			if !filepath.IsAbs(path) {
				path = filepath.Join(scriptDir, path)
			}
			fmt.Printf("== step %d: patch %s <- %s ==\n", step+1, op.TU, op.Path)
			tu := link.LazyTU(op.TU, func() (*ir.Module, error) { return source.Load(path) })
			if noRelink {
				idx := -1
				for i := range cur {
					if cur[i].Name == op.TU {
						idx = i
						break
					}
				}
				if idx < 0 {
					return fmt.Errorf("step %d: link: no unit named %q", step+1, op.TU)
				}
				cur[idx] = tu
				if _, err := link.New(cur, link.Options{DupExported: dup}); err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
			} else {
				rep, err := sess.ReplaceNamed(tu)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				if rep.PlanReused {
					fmt.Fprintf(os.Stderr, "step %d: body-only edit, plan reused\n", step+1)
				} else {
					fmt.Fprintf(os.Stderr, "step %d: link surface changed, plan rebuilt\n", step+1)
				}
			}
		case "search":
			var (
				pl  *link.Plan
				res link.SearchResult
				ok  bool
			)
			if noRelink {
				l, err := link.New(cur, link.Options{DupExported: dup})
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				pl = l.Plan()
				res, ok, err = l.OptimalSearch(opts)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
			} else {
				pl = sess.Plan()
				var info link.RelinkInfo
				res, info, ok, err = sess.Search(opts)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				fmt.Fprintf(os.Stderr, "step %d: components solved %d, replayed %d; residual solved %d, replayed %d\n",
					step+1, info.ComponentsSolved, info.ComponentsReplayed, info.ResidualSolved, info.ResidualReplayed)
			}
			if !ok {
				return fmt.Errorf("step %d: search space too large for exhaustive search; use inlinesearch -relink -max-space", step+1)
			}
			fmt.Printf("linked(%d files): %d inlinable calls, %d inlined, .text %d bytes (%s, -inline optimal)\n",
				len(files), len(pl.Edges), res.Config.InlineCount(), res.Size, target)
		case "tune":
			return fmt.Errorf("step %d: tune steps replay with inlinetune -relink", step+1)
		}
	}
	if cacheDir != "" {
		if err := fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "mincc:", err)
		}
	}
	if cacheStats {
		fmt.Fprintf(os.Stderr, "fn content cache: %v\n", fncache.Stats())
	}
	return nil
}
