// Command inlineload replays the experiment corpus against a running
// inlined daemon at N-way client concurrency, measuring throughput and
// latency percentiles and — with -verify — checking every response
// byte-for-byte against its peers and size-for-size against a direct
// in-process computation. It is the paper repo's service-mode counterpart
// of the batch harness: same generated SPEC-shaped corpus, but pushed
// through HTTP with many clients sharing one daemon-side content cache.
//
// Usage:
//
//	inlineload -addr host:port [flags]
//
//	-addr host:port   daemon address (required), e.g. 127.0.0.1:7433
//	-clients N        concurrent client goroutines (default 8)
//	-mode m           mixed|compile|search|tune|analyze (default mixed;
//	                  mixed covers compile, search, and analyze)
//	-scale f          corpus scale; 1.0 = the full 20-benchmark corpus
//	-repeat N         replay the request list N times per client (default 1)
//	-max-space N      per-request search space cap (default 65536)
//	-jobs N           per-request worker budget sent to the daemon (default 1)
//	-verify           byte-compare responses across clients and check sizes
//	                  against a local single-threaded computation
//	-smoke            tiny fixed corpus and 2 clients; exit non-zero on any
//	                  failure (the ci.sh gate)
//	-json             emit the measurement as JSON (BENCH_search.json shape)
//	-linked name      replay the linked-session edit loop over the named
//	                  linked profile (linked-tiny, or
//	                  linked-s|linked-m|linked-x10|linked-x30)
//	                  instead of the batch corpus: every client opens its own
//	                  /link session over the profile's units and drives the
//	                  same deterministic edit-patch-search script, so the
//	                  daemon-side component result cache is hammered by
//	                  identical content keys from many sessions at once
//	-steps N          patch+search steps per client in -linked mode
//	                  (default 6); edits cycle MutateLinkedTU's three kinds
//
// In -linked mode -verify byte-compares each step's patch and search
// bodies across clients (session ids normalized away) and checks every
// search against a cold single-threaded link+search of that step's unit
// contents — the incremental session must be invisible in the bytes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"optinline/internal/analysis/interproc"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/ir"
	"optinline/internal/link"
	"optinline/internal/search"
	"optinline/internal/server"
	"optinline/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inlineload:", err)
		os.Exit(1)
	}
}

// request is one prepared replay unit; the payload is marshaled once so
// every client sends — and under -verify must receive — identical bytes.
type request struct {
	key     string
	path    string
	payload []byte
}

// expectation is the locally computed truth for one corpus file.
type expectation struct {
	osSize      int
	optimalSize int // 0 when the space exceeds -max-space
	searched    bool
	spaceSize   uint64
	edges       int // candidate call sites (= /analyze sites)
}

func run() error {
	var (
		addr     = flag.String("addr", "", "inlined daemon address (host:port)")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		mode     = flag.String("mode", "mixed", "request mix: mixed|compile|search|tune|analyze")
		scale    = flag.Float64("scale", 1.0, "corpus scale (1.0 = full 20-benchmark corpus)")
		repeat   = flag.Int("repeat", 1, "replays of the request list per client")
		maxSpace = flag.Uint64("max-space", 1<<16, "per-request search space cap")
		jobs     = flag.Int("jobs", 1, "per-request worker budget")
		verify   = flag.Bool("verify", false, "verify responses across clients and against local computation")
		smoke    = flag.Bool("smoke", false, "tiny corpus, 2 clients, strict exit status (CI gate)")
		asJSON   = flag.Bool("json", false, "emit the measurement as JSON")
		linked   = flag.String("linked", "", "linked profile for the edit-patch-search replay (e.g. linked-s)")
		steps    = flag.Int("steps", 6, "patch+search steps per client in -linked mode")
	)
	flag.Parse()
	if *addr == "" {
		return fmt.Errorf("-addr is required (start inlined and pass its address)")
	}
	if *smoke {
		*clients = 2
		*scale = 0.05
		*repeat = 2
		*verify = true
	}
	if *clients < 1 {
		*clients = 1
	}
	base := "http://" + *addr
	if *linked != "" {
		return runLinked(base, *linked, *clients, *steps, *maxSpace, *jobs, *verify, *asJSON)
	}

	corpus := buildCorpus(*scale)
	reqs, expected, err := buildRequests(corpus, *mode, *maxSpace, *jobs, *verify)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "inlineload: %d files, %d requests x %d clients x %d repeats (mode %s)\n",
		len(corpus), len(reqs), *clients, *repeat, *mode)

	if _, err := fetchStats(base); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", *addr, err)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string
		firstBody = make(map[string][]byte, len(reqs))
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	httpClient := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < *repeat; rep++ {
				for i := range reqs {
					// Rotated walk: clients overlap on different requests.
					r := reqs[(i+c*13)%len(reqs)]
					t0 := time.Now()
					status, body, err := doPost(httpClient, base+r.path, r.payload)
					lat := time.Since(t0)
					if err != nil {
						fail("%s: %v", r.key, err)
						continue
					}
					if status != http.StatusOK {
						fail("%s: status %d: %s", r.key, status, truncate(body))
						continue
					}
					mu.Lock()
					latencies = append(latencies, lat)
					prev, seen := firstBody[r.key]
					if !seen {
						firstBody[r.key] = body
					}
					mu.Unlock()
					if *verify && seen && !bytes.Equal(prev, body) {
						fail("%s: response diverged across clients:\n  %s\n  %s", r.key, truncate(prev), truncate(body))
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if *verify {
		verifyAgainstLocal(firstBody, expected, fail)
	}

	st, statsErr := fetchStats(base)
	if statsErr != nil {
		fail("fetch /stats after run: %v", statsErr)
	}

	report(os.Stdout, *asJSON, summary{
		Clients:    *clients,
		Requests:   len(latencies),
		Failures:   len(failures),
		Elapsed:    elapsed,
		Latencies:  latencies,
		Mode:       *mode,
		Scale:      *scale,
		Verified:   *verify,
		DaemonStat: st,
	})
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "inlineload: FAIL:", f)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d failures", len(failures))
	}
	if *verify {
		fmt.Fprintln(os.Stderr, "inlineload: verify: all responses byte-identical across clients and size-identical to local runs")
	}
	return nil
}

// buildCorpus generates the SPEC-shaped corpus at the given scale, exactly
// like the batch harness scales its profiles.
func buildCorpus(scale float64) []workload.File {
	var files []workload.File
	for _, p := range workload.SPECProfiles() {
		p.Files = scaleInt(p.Files, scale)
		p.TotalEdges = scaleInt(p.TotalEdges, scale)
		b := workload.Generate(p)
		files = append(files, b.Files...)
	}
	return files
}

func scaleInt(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// buildRequests prepares the request list and (under verify) the local
// single-threaded truth to compare against.
func buildRequests(corpus []workload.File, mode string, maxSpace uint64, jobs int, verify bool) ([]request, map[string]expectation, error) {
	var reqs []request
	expected := make(map[string]expectation, len(corpus))
	addJSON := func(key, path string, body any) error {
		payload, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reqs = append(reqs, request{key: key, path: path, payload: payload})
		return nil
	}
	for _, f := range corpus {
		name := f.Name + ".ir"
		src := f.Module.String()
		wantCompile := mode == "mixed" || mode == "compile"
		wantSearch := mode == "mixed" || mode == "search"
		wantTune := mode == "tune"
		wantAnalyze := mode == "mixed" || mode == "analyze"
		if wantCompile {
			if err := addJSON(name+"/compile-os", "/compile", server.CompileRequest{
				Name: name, Source: src, Inline: "os", Jobs: jobs,
			}); err != nil {
				return nil, nil, err
			}
		}
		if wantSearch {
			if err := addJSON(name+"/search", "/search", server.SearchRequest{
				Name: name, Source: src, MaxSpace: maxSpace, Jobs: jobs,
			}); err != nil {
				return nil, nil, err
			}
		}
		if wantTune {
			if err := addJSON(name+"/tune", "/tune", server.TuneRequest{
				Name: name, Source: src, Init: "os", Rounds: 2, Jobs: jobs,
			}); err != nil {
				return nil, nil, err
			}
		}
		if wantAnalyze {
			if err := addJSON(name+"/analyze", "/analyze", server.AnalyzeRequest{
				Name: name, Source: src, Jobs: jobs,
			}); err != nil {
				return nil, nil, err
			}
		}
		if verify && (wantCompile || wantSearch || wantAnalyze) {
			expected[name] = computeLocal(f, maxSpace)
		}
	}
	switch mode {
	case "mixed", "compile", "search", "tune", "analyze":
	default:
		return nil, nil, fmt.Errorf("unknown -mode %q", mode)
	}
	return reqs, expected, nil
}

// computeLocal is the batch-CLI ground truth: a fresh compiler per file,
// sequential search — what `mincc -inline os` and `inlinesearch` print.
func computeLocal(f workload.File, maxSpace uint64) expectation {
	comp := compile.NewWithOptions(f.Module, codegen.TargetX86, compile.Options{FnCache: compile.NewFnCache()})
	e := expectation{
		osSize: comp.Size(heuristic.OsConfig(comp.Module(), comp.Graph())),
		edges:  len(comp.Graph().Edges),
	}
	res, ok := search.Optimal(comp, search.Options{Workers: 1, MaxSpace: maxSpace})
	e.searched = ok
	e.spaceSize = res.SpaceSize
	if ok {
		e.optimalSize = res.Size
	}
	return e
}

func verifyAgainstLocal(bodies map[string][]byte, expected map[string]expectation, fail func(string, ...any)) {
	for key, body := range bodies {
		switch {
		case strings.HasSuffix(key, "/compile-os"):
			var resp server.CompileResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				fail("%s: bad response JSON: %v", key, err)
				continue
			}
			want, ok := expected[resp.Name]
			if !ok {
				continue
			}
			if resp.Size != want.osSize {
				fail("%s: daemon size %d, batch CLI computes %d", key, resp.Size, want.osSize)
			}
		case strings.HasSuffix(key, "/analyze"):
			var resp server.AnalyzeResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				fail("%s: bad response JSON: %v", key, err)
				continue
			}
			want, ok := expected[resp.Name]
			if !ok {
				continue
			}
			if resp.SchemaVersion != interproc.FeatureSchemaVersion {
				fail("%s: daemon feature schema v%d, this binary expects v%d",
					key, resp.SchemaVersion, interproc.FeatureSchemaVersion)
			}
			if got := len(resp.Sites); got != want.edges {
				fail("%s: daemon reports %d sites, local graph has %d candidate edges", key, got, want.edges)
			}
		case strings.HasSuffix(key, "/search"):
			var resp server.SearchResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				fail("%s: bad response JSON: %v", key, err)
				continue
			}
			want, ok := expected[resp.Name]
			if !ok {
				continue
			}
			if resp.Searched != want.searched || resp.SpaceSize != want.spaceSize {
				fail("%s: daemon searched=%v space=%d, batch CLI %v/%d",
					key, resp.Searched, resp.SpaceSize, want.searched, want.spaceSize)
			}
			if want.searched && resp.OptimalSize != want.optimalSize {
				fail("%s: daemon optimal %d, batch CLI computes %d", key, resp.OptimalSize, want.optimalSize)
			}
			if resp.HeuristicSize != want.osSize {
				fail("%s: daemon heuristic %d, batch CLI computes %d", key, resp.HeuristicSize, want.osSize)
			}
		}
	}
}

type summary struct {
	Clients    int
	Requests   int
	Failures   int
	Elapsed    time.Duration
	Latencies  []time.Duration
	Mode       string
	Scale      float64
	Verified   bool
	DaemonStat *server.StatsResponse
}

// jsonSummary is the BENCH_search.json "load_replay" entry shape.
type jsonSummary struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	Scale       float64 `json:"scale"`
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests"`
	Failures    int     `json:"failures"`
	Verified    bool    `json:"verified"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"requestsPerSecond"`
	P50Ms       float64 `json:"p50Ms"`
	P90Ms       float64 `json:"p90Ms"`
	P99Ms       float64 `json:"p99Ms"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	FnCacheHits int64   `json:"fnCacheHits"`
	Evaluations int64   `json:"evaluations"`
}

func report(w io.Writer, asJSON bool, s summary) {
	p50 := percentile(s.Latencies, 0.50)
	p90 := percentile(s.Latencies, 0.90)
	p99 := percentile(s.Latencies, 0.99)
	throughput := float64(s.Requests) / s.Elapsed.Seconds()
	if asJSON {
		js := jsonSummary{
			Name: "load_replay", Mode: s.Mode, Scale: s.Scale,
			Clients: s.Clients, Requests: s.Requests, Failures: s.Failures,
			Verified: s.Verified, Seconds: s.Elapsed.Seconds(), Throughput: throughput,
			P50Ms: ms(p50), P90Ms: ms(p90), P99Ms: ms(p99),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		if s.DaemonStat != nil {
			js.FnCacheHits = s.DaemonStat.FnCache.Hits
			js.Evaluations = s.DaemonStat.Evaluations
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(js)
		return
	}
	fmt.Fprintf(w, "requests:   %d ok, %d failed, %d clients\n", s.Requests, s.Failures, s.Clients)
	fmt.Fprintf(w, "wall clock: %.2fs  (%.1f requests/s)\n", s.Elapsed.Seconds(), throughput)
	fmt.Fprintf(w, "latency:    p50 %.1fms  p90 %.1fms  p99 %.1fms\n", ms(p50), ms(p90), ms(p99))
	if s.DaemonStat != nil {
		fmt.Fprintf(w, "daemon:     fncache %d hits / %d misses, %d evaluations, %d compilers built\n",
			s.DaemonStat.FnCache.Hits, s.DaemonStat.FnCache.Misses,
			s.DaemonStat.Evaluations, s.DaemonStat.Compilers.Built)
	}
}

func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func doPost(client *http.Client, url string, payload []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

func fetchStats(base string) (*server.StatsResponse, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// linkedStep is one scripted action of the -linked replay: an optional
// patch (tu >= 0) followed by a search, with the unit contents the session
// holds *after* the patch — the cold-link ground truth for -verify.
type linkedStep struct {
	tu            int // index into the profile's units; -1 = no patch
	patchPayload  []byte
	searchPayload []byte
	state         []*ir.Module
}

// buildLinkedScript generates the profile's units and the deterministic
// edit script every client replays: step 0 searches the pristine link, and
// each later step patches unit (s-1) mod T with MutateLinkedTU(original, s)
// — cycling body edits, local renames, and export flips — then searches.
// Edits derive from the *original* units, so the state after step s is a
// pure function of s and identical for every client and for the local
// verifier.
func buildLinkedScript(lp workload.LinkedProfile, steps int, maxSpace uint64, jobs int) ([]server.LinkUnit, []linkedStep, error) {
	bench := workload.GenerateLinked(lp)
	units := make([]server.LinkUnit, len(bench.Files))
	state := make([]*ir.Module, len(bench.Files))
	for i, f := range bench.Files {
		state[i] = f.Module
		units[i] = server.LinkUnit{Name: f.Name + ".ir", Source: f.Module.String()}
	}
	orig := append([]*ir.Module(nil), state...)

	searchPayload, err := json.Marshal(server.LinkSearchRequest{MaxSpace: maxSpace, Jobs: jobs})
	if err != nil {
		return nil, nil, err
	}
	script := make([]linkedStep, 0, steps+1)
	snapshot := func() []*ir.Module { return append([]*ir.Module(nil), state...) }
	script = append(script, linkedStep{tu: -1, searchPayload: searchPayload, state: snapshot()})
	for s := 1; s <= steps; s++ {
		t := (s - 1) % len(orig)
		m := workload.MutateLinkedTU(orig[t], s)
		state[t] = m
		payload, err := json.Marshal(server.LinkPatchRequest{
			Unit: server.LinkUnit{Name: units[t].Name, Source: m.String()},
			Jobs: jobs,
		})
		if err != nil {
			return nil, nil, err
		}
		script = append(script, linkedStep{
			tu: t, patchPayload: payload, searchPayload: searchPayload, state: snapshot(),
		})
	}
	return units, script, nil
}

// coldLinkedSearch is the -linked ground truth: a cold link of the step's
// unit contents searched single-threaded with fresh caches, exactly what
// `inlinesearch -link` computes for those files.
func coldLinkedSearch(units []server.LinkUnit, state []*ir.Module, maxSpace uint64) (link.SearchResult, bool, error) {
	tus := make([]link.TU, len(state))
	for i, m := range state {
		tus[i] = link.ModuleTU(units[i].Name, m)
	}
	l, err := link.New(tus, link.Options{DupExported: link.DupExportedRename})
	if err != nil {
		return link.SearchResult{}, false, err
	}
	return l.OptimalSearch(link.SearchOptions{
		ShardOptions: link.ShardOptions{
			Target:  codegen.TargetX86,
			Compile: compile.Options{FnCache: compile.NewFnCache()},
			Workers: 1,
		},
		MaxSpace: maxSpace,
	})
}

// linkedLoadProfile resolves -linked's profile name. Besides the standard
// family it accepts "linked-tiny", a 4-unit corpus whose components stay
// under the default space cap — the full-family profiles abort the exact
// search at small -max-space, which exercises only the abort path.
func linkedLoadProfile(name string) (workload.LinkedProfile, bool) {
	if lp, ok := workload.LinkedProfileByName(name); ok {
		return lp, true
	}
	if name != "linked-tiny" {
		return workload.LinkedProfile{}, false
	}
	return workload.LinkedProfile{
		Name:       "linked-tiny",
		TUs:        4,
		EdgesPerTU: 5,
		Cluster:    2,
		ExtCalls:   2,
		Shape: workload.Profile{
			ConstArgProb: 0.3,
			HubProb:      0.05,
			BigBodyProb:  0.1,
			LoopProb:     0.15,
			RecProb:      0.05,
			BranchProb:   0.3,
		},
	}, true
}

// runLinked drives the -linked replay: each client owns one /link session
// and replays the same edit script, so concurrent sessions keep presenting
// the daemon's shared component cache with identical content keys.
func runLinked(base, profile string, clients, steps int, maxSpace uint64, jobs int, verify, asJSON bool) error {
	lp, ok := linkedLoadProfile(profile)
	if !ok {
		return fmt.Errorf("unknown linked profile %q (want linked-tiny or inlinebench -list names)", profile)
	}
	if steps < 1 {
		steps = 1
	}
	units, script, err := buildLinkedScript(lp, steps, maxSpace, jobs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "inlineload: linked %s: %d units, %d steps x %d clients\n",
		profile, len(units), len(script), clients)
	if _, err := fetchStats(base); err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string
		firstBody = make(map[string][]byte, 2*len(script))
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	// Bodies echo the per-client session id; normalize it away so the
	// cross-client byte comparison sees only content.
	record := func(key, id string, body []byte) {
		norm := bytes.Replace(body, []byte(`"id":"`+id+`"`), []byte(`"id":"*"`), 1)
		mu.Lock()
		prev, seen := firstBody[key]
		if !seen {
			firstBody[key] = norm
		}
		mu.Unlock()
		if verify && seen && !bytes.Equal(prev, norm) {
			fail("%s: response diverged across clients:\n  %s\n  %s", key, truncate(prev), truncate(norm))
		}
	}

	httpClient := &http.Client{Timeout: 5 * time.Minute}
	call := func(path string, payload []byte) ([]byte, bool) {
		t0 := time.Now()
		status, body, err := doPost(httpClient, base+path, payload)
		lat := time.Since(t0)
		if err != nil {
			fail("%s: %v", path, err)
			return nil, false
		}
		if status != http.StatusOK {
			fail("%s: status %d: %s", path, status, truncate(body))
			return nil, false
		}
		mu.Lock()
		latencies = append(latencies, lat)
		mu.Unlock()
		return body, true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("load-%d", c)
			createPayload, err := json.Marshal(server.LinkCreateRequest{
				ID: id, Units: units, DupPolicy: "rename", Jobs: jobs,
			})
			if err != nil {
				fail("marshal create: %v", err)
				return
			}
			body, ok := call("/link", createPayload)
			if !ok {
				return
			}
			record("linked/create", id, body)
			for si, st := range script {
				if st.tu >= 0 {
					body, ok := call("/link/"+id+"/patch", st.patchPayload)
					if !ok {
						return
					}
					record(fmt.Sprintf("linked/step%02d/patch", si), id, body)
				}
				body, ok := call("/link/"+id+"/search", st.searchPayload)
				if !ok {
					return
				}
				record(fmt.Sprintf("linked/step%02d/search", si), id, body)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if body, ok := firstBody["linked/step00/search"]; ok {
		var resp server.LinkSearchResponse
		if json.Unmarshal(body, &resp) == nil && !resp.Searched {
			fmt.Fprintf(os.Stderr, "inlineload: note: space %d exceeds -max-space %d; every step replays the abort path (use -linked linked-tiny or raise -max-space to solve components)\n",
				resp.SpaceTotal, maxSpace)
		}
	}

	if verify {
		for si, st := range script {
			body, ok := firstBody[fmt.Sprintf("linked/step%02d/search", si)]
			if !ok {
				continue
			}
			var resp server.LinkSearchResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				fail("step %d: bad search JSON: %v", si, err)
				continue
			}
			want, searched, err := coldLinkedSearch(units, st.state, maxSpace)
			if err != nil {
				fail("step %d: cold link: %v", si, err)
				continue
			}
			if resp.Searched != searched || resp.SpaceTotal != want.SpaceTotal {
				fail("step %d: daemon searched=%v space=%d, cold link %v/%d",
					si, resp.Searched, resp.SpaceTotal, searched, want.SpaceTotal)
				continue
			}
			if searched && (resp.OptimalSize != want.Size || resp.NoInlineSize != want.NoInlineSize ||
				resp.ConfigKey != want.Config.Key()) {
				fail("step %d: daemon optimal %d/noInline %d/key %s, cold link %d/%d/%s",
					si, resp.OptimalSize, resp.NoInlineSize, resp.ConfigKey,
					want.Size, want.NoInlineSize, want.Config.Key())
			}
		}
	}

	st, statsErr := fetchStats(base)
	if statsErr != nil {
		fail("fetch /stats after run: %v", statsErr)
	}
	report(os.Stdout, asJSON, summary{
		Clients:    clients,
		Requests:   len(latencies),
		Failures:   len(failures),
		Elapsed:    elapsed,
		Latencies:  latencies,
		Mode:       "linked:" + profile,
		Scale:      1,
		Verified:   verify,
		DaemonStat: st,
	})
	if st != nil {
		fmt.Fprintf(os.Stderr, "inlineload: daemon relink: %d searches, %d patches (%d plan reuses), cache %d hits / %d misses\n",
			st.LinkSessions.Searches, st.LinkSessions.Patches, st.LinkSessions.PlanReuses,
			st.RelinkCache.Hits, st.RelinkCache.Misses)
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "inlineload: FAIL:", f)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d failures", len(failures))
	}
	if verify {
		fmt.Fprintln(os.Stderr, "inlineload: verify: linked replay byte-identical across clients and size-identical to cold links")
	}
	return nil
}

func truncate(b []byte) string {
	const maxLen = 200
	if len(b) > maxLen {
		return string(b[:maxLen]) + "..."
	}
	return string(b)
}
