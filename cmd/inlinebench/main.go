// Command inlinebench regenerates the paper's tables and figures against
// the synthetic corpus (see DESIGN.md for the experiment index).
//
// Usage:
//
//	inlinebench [flags]
//
//	-exp id       experiment to run: fig1..fig19, tab1..tab4,
//	              llvm-case, sqlite-case, linked-case, or "all"
//	              (default all); linked-scale is extra-heavy and only
//	              runs when named explicitly
//	-no-shard     linked-module experiments: solve components on one merged
//	              compiler instead of per-component shards (differential
//	              oracle — stdout is byte-identical)
//	-list         list experiment IDs and exit
//	-scale F      workload scale, 1.0 = full corpus (default 1.0)
//	-rounds N     autotuning rounds (default 4)
//	-cap N        recursive-space cap for exhaustive experiments (default 2^14)
//	-jobs N       parallelism: files, subtrees, and experiment cases
//	              (default GOMAXPROCS; -jobs 1 forces a sequential run)
//	-workers N    deprecated alias for -jobs
//	-check        checked compilation: verify IR invariants after every
//	              inline step and opt pass of every evaluation (slow)
//	-no-delta     disable the incremental delta-evaluation engine; every
//	              probe prices a whole configuration (differential oracle)
//	-no-prune     disable the branch-and-bound layer of the optimal search;
//	              exhaustive experiments run the plain recursion instead
//	              (differential oracle — stdout is byte-identical)
//	-no-fncache   disable the content-addressed per-function compile cache,
//	              falling back to per-module memo keys (differential oracle)
//	-no-cycledelta cycle pricers (the pareto experiment) evaluate whole
//	              configurations instead of repricing incrementally
//	              (differential oracle — stdout is byte-identical)
//	-cache-dir d  persist the content cache in directory d: entries from a
//	              previous run are reused, and this run's are saved back
//	-cpuprofile f write a CPU profile to f
//	-memprofile f write a heap profile to f at exit
//
// Results are bit-identical for every -jobs value, for -no-delta and
// -no-fncache, and for warm -cache-dir reruns; the run ends with
// compile-cache statistics and total wall-clock time on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"optinline/internal/compile"
	"optinline/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inlinebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment id or 'all'")
		list      = flag.Bool("list", false, "list experiment IDs")
		scale     = flag.Float64("scale", 1.0, "workload scale")
		rounds    = flag.Int("rounds", 4, "autotuning rounds")
		spaceCap  = flag.Uint64("cap", 1<<14, "recursive-space cap for exhaustive experiments")
		jobs      = flag.Int("jobs", 0, "parallel jobs (0 = GOMAXPROCS)")
		workers   = flag.Int("workers", 0, "deprecated alias for -jobs")
		noMemo    = flag.Bool("no-memo", false, "disable the per-component memoized compile path (for measuring its effect)")
		noDelta   = flag.Bool("no-delta", false, "disable the incremental delta-evaluation engine (differential oracle)")
		noPrune   = flag.Bool("no-prune", false, "disable the branch-and-bound search layer (differential oracle)")
		noShard   = flag.Bool("no-shard", false, "linked-module experiments: one merged compiler instead of per-component shards (differential oracle)")
		noFnCache = flag.Bool("no-fncache", false, "disable the content-addressed per-function cache (differential oracle)")
		noCycleDelta = flag.Bool("no-cycledelta", false, "cycle pricers evaluate whole configurations instead of repricing incrementally (differential oracle)")
		cacheDir  = flag.String("cache-dir", "", "persist the per-function content cache in this directory")
		check     = flag.Bool("check", false, "checked compilation: verify IR invariants after every inline step and opt pass (slow)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "inlinebench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "inlinebench: -memprofile:", err)
			}
		}()
	}
	if *jobs == 0 && *workers != 0 {
		*jobs = *workers
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	start := time.Now()
	fncache, err := compile.OpenFnCache(*cacheDir)
	if err != nil {
		return err
	}
	h := experiments.NewHarness(experiments.Config{
		Scale:          *scale,
		Workers:        *jobs,
		ExhaustiveCap:  *spaceCap,
		Rounds:         *rounds,
		DisableMemo:    *noMemo,
		DisableDelta:   *noDelta,
		Checked:        *check,
		DisablePrune:   *noPrune,
		DisableFnCache: *noFnCache,
		FnCache:           fncache,
		DisableShard:      *noShard,
		DisableCycleDelta: *noCycleDelta,
	})
	fmt.Fprintf(os.Stderr, "corpus generated in %v\n", time.Since(start).Round(time.Millisecond))

	var results []experiments.Result
	if *exp == "all" {
		results = h.RunAll()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, err := h.Run(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Printf("\n================================================================\n")
		fmt.Printf("%s — %s\n", r.ID, r.Title)
		fmt.Printf("================================================================\n\n")
		fmt.Println(r.Text)
	}
	if *cacheDir != "" {
		if err := fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "inlinebench:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "config cache:    %v\n", h.ConfigCacheStats())
	fmt.Fprintf(os.Stderr, "function cache:  %v\n", h.FuncCacheStats())
	fmt.Fprintf(os.Stderr, "fn content cache: %v\n", h.FnCacheStats())
	fmt.Fprintf(os.Stderr, "delta engine:    %v\n", h.DeltaStats())
	fmt.Fprintf(os.Stderr, "search pruning:  %v\n", h.PruneStats())
	fmt.Fprintf(os.Stderr, "cycle pricer:    %v\n", h.CycleStats())
	fmt.Fprintf(os.Stderr, "total time %v\n", time.Since(start).Round(time.Millisecond))
	if *check {
		if fails := h.CheckFailures(); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "check:", f)
			}
			return fmt.Errorf("checked mode: %d file(s) hit invariant violations", len(fails))
		}
		fmt.Fprintln(os.Stderr, "checked mode: no invariant violations")
	}
	return nil
}
