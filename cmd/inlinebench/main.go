// Command inlinebench regenerates the paper's tables and figures against
// the synthetic corpus (see DESIGN.md for the experiment index).
//
// Usage:
//
//	inlinebench [flags]
//
//	-exp id       experiment to run: fig1..fig19, tab1..tab4,
//	              llvm-case, sqlite-case, or "all" (default all)
//	-list         list experiment IDs and exit
//	-scale F      workload scale, 1.0 = full corpus (default 1.0)
//	-rounds N     autotuning rounds (default 4)
//	-cap N        recursive-space cap for exhaustive experiments (default 2^14)
//	-workers N    parallelism (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"optinline/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inlinebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		list    = flag.Bool("list", false, "list experiment IDs")
		scale   = flag.Float64("scale", 1.0, "workload scale")
		rounds  = flag.Int("rounds", 4, "autotuning rounds")
		cap     = flag.Uint64("cap", 1<<14, "recursive-space cap for exhaustive experiments")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	start := time.Now()
	h := experiments.NewHarness(experiments.Config{
		Scale:         *scale,
		Workers:       *workers,
		ExhaustiveCap: *cap,
		Rounds:        *rounds,
	})
	fmt.Fprintf(os.Stderr, "corpus generated in %v\n", time.Since(start).Round(time.Millisecond))

	var results []experiments.Result
	if *exp == "all" {
		results = h.RunAll()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, err := h.Run(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	}
	for _, r := range results {
		fmt.Printf("\n================================================================\n")
		fmt.Printf("%s — %s\n", r.ID, r.Title)
		fmt.Printf("================================================================\n\n")
		fmt.Println(r.Text)
	}
	fmt.Fprintf(os.Stderr, "total time %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
