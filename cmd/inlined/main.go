// Command inlined is the long-running inlining service: the batch CLIs'
// compile/search/tune core behind an HTTP daemon, sharing one
// content-addressed per-function cache across every request and — with
// -cache-dir — across restarts via the concurrent-safe incremental store.
//
// Usage:
//
//	inlined [flags]
//
//	-addr host:port       listen address (default 127.0.0.1:7433; use :0
//	                      for an ephemeral port, printed on stderr)
//	-jobs N               global worker-token pool shared by all requests
//	                      (default GOMAXPROCS)
//	-queue N              max requests waiting for tokens before 503
//	                      (default 64; negative = reject when busy)
//	-timeout d            per-request deadline for queueing (default 2m)
//	-max-compilers N      per-module compiler pool bound (default 128)
//	-max-space N          default /search space cap (default 65536)
//	-cache-dir d          persist the per-function cache in directory d
//	-cache-max-entries N  LRU bound on cached functions (0 = unbounded)
//	-fsync-every N        fsync the store every N appended records
//	-compact              compact the -cache-dir store offline and exit
//	-allow-delay          honor requests' delayMs field (testing only)
//	-no-interproc-cache   recompute /analyze summaries from scratch
//	                      (differential oracle for the summary cache)
//	-max-link-sessions N  incremental re-link session registry bound
//	                      (default 32, FIFO eviction)
//	-no-relink-cache      re-solve every component from scratch instead of
//	                      sharing the content-keyed result cache across link
//	                      sessions (differential oracle: /link responses are
//	                      byte-identical either way)
//	-drain-timeout d      how long SIGTERM waits for in-flight work (default 30s)
//
// Endpoints: POST /analyze, POST /compile, POST /search, POST /tune
// (JSON in/out),
// GET /stats, GET /healthz. On SIGTERM or SIGINT the daemon drains in two
// phases: /healthz and new work answer 503 while in-flight requests
// finish, then the listener shuts down and the cache store is synced.
//
// POST /link opens an incremental re-link session over named units (an id
// reused replaces the session); POST /link/{id}/patch swaps one unit's
// contents, recomputing symbol resolution only when the unit's link surface
// changed; POST /link/{id}/search and /link/{id}/tune answer the optimal
// search / lockstep autotune over the current units, re-solving only
// components whose 128-bit content key is new and replaying the rest from
// a result cache shared across all sessions; DELETE /link/{id} drops the
// session. Bodies are deterministic; replay and cache counters are on
// GET /stats under "linkSessions" and "relinkCache".
//
// /tune accepts an "objective" field (size, weighted, cycles): cycle-aware
// objectives profile entry(args...) on the no-inline baseline once — the
// profile and its incremental cycle pricer are pooled across requests —
// and report initCycles/bestCycles plus per-round cycles alongside the
// size trace. "noCycleDelta": true prices every probe with the
// whole-module oracle instead; the response is byte-identical either way.
// GET /stats exposes the pricer pool (profiles cached, repricings,
// whole-module fallbacks, replay events) under "cyclePricers".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"optinline/internal/compile"
	"optinline/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inlined:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr          = flag.String("addr", "127.0.0.1:7433", "listen address (use :0 for an ephemeral port)")
		jobs          = flag.Int("jobs", 0, "global worker-token pool (0 = GOMAXPROCS)")
		queueBound    = flag.Int("queue", 0, "max waiting requests before 503 (0 = 64, negative = none)")
		timeout       = flag.Duration("timeout", 2*time.Minute, "per-request queueing deadline")
		maxCompilers  = flag.Int("max-compilers", 0, "per-module compiler pool bound (0 = 128)")
		maxSpace      = flag.Uint64("max-space", 1<<16, "default search space cap")
		cacheDir      = flag.String("cache-dir", "", "persist the per-function cache in this directory")
		cacheMax      = flag.Int("cache-max-entries", 0, "LRU bound on cached functions (0 = unbounded)")
		fsyncEvery    = flag.Int("fsync-every", 0, "fsync the store every N appended records (0 = default)")
		compact       = flag.Bool("compact", false, "compact the -cache-dir store offline and exit")
		allowDelay    = flag.Bool("allow-delay", false, "honor requests' delayMs field (testing only)")
		noIPCache     = flag.Bool("no-interproc-cache", false, "recompute /analyze summaries from scratch")
		maxLinkSess   = flag.Int("max-link-sessions", 0, "incremental re-link session bound (0 = 32)")
		noRelinkCache = flag.Bool("no-relink-cache", false, "re-solve every component instead of sharing the relink result cache")
		drainWait     = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("usage: inlined [flags] (no positional arguments)")
	}

	if *compact {
		if *cacheDir == "" {
			return fmt.Errorf("-compact requires -cache-dir")
		}
		return compactStore(*cacheDir, *cacheMax)
	}

	fncache, err := compile.OpenFnCacheWith(compile.FnCacheConfig{
		Dir: *cacheDir, MaxEntries: *cacheMax, FsyncEvery: *fsyncEvery,
	})
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Jobs:            *jobs,
		MaxQueue:        *queueBound,
		RequestTimeout:  *timeout,
		MaxCompilers:    *maxCompilers,
		DefaultMaxSpace: *maxSpace,
		FnCache:         fncache,
		AllowDelay:      *allowDelay,

		DisableSummaryCache: *noIPCache,
		MaxLinkSessions:     *maxLinkSess,
		DisableRelinkCache:  *noRelinkCache,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The parseable stderr line is the contract with inlineload -addr auto,
	// the e2e tests, and the ci.sh smoke gate: with -addr :0 it is the only
	// way to learn the port.
	fmt.Fprintf(os.Stderr, "inlined: listening on http://%s\n", ln.Addr())
	if st := fncache.Stats(); *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "inlined: cache store %s: %d entries loaded (%d corrupt, %d duplicate)\n",
			*cacheDir, st.Loaded, st.Corrupt, st.Dupes)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "inlined: %v: draining (in-flight work finishes; fresh work gets 503)\n", s)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "inlined: drain incomplete:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "inlined: shutdown:", err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	if err := fncache.Close(); err != nil {
		return fmt.Errorf("closing cache store: %w", err)
	}
	fmt.Fprintf(os.Stderr, "inlined: drained; fn content cache: %v\n", fncache.Stats())
	return nil
}

// compactStore rewrites the append log canonically: duplicates from
// crash-reappends and stale records from evicted entries are dropped, and
// the result is byte-identical for identical cache contents.
func compactStore(dir string, maxEntries int) error {
	fncache, err := compile.OpenFnCacheWith(compile.FnCacheConfig{Dir: dir, MaxEntries: maxEntries})
	if err != nil {
		return err
	}
	before := fncache.Stats()
	if err := fncache.Compact(); err != nil {
		return fmt.Errorf("compact %s: %w", dir, err)
	}
	if err := fncache.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "inlined: compacted %s: %d entries kept (%d duplicate, %d corrupt records dropped)\n",
		dir, fncache.Len(), before.Dupes, before.Corrupt)
	return nil
}
