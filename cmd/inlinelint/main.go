// Command inlinelint runs the MinC source lints, the IR static-analyzer
// suite, and the interprocedural summary lints over one or more files and
// reports the findings.
//
// For a .minc file it lints the AST (unused locals, unreachable statements,
// use-before-initialization, shadowing) and then lowers it and runs the IR
// analyzers (undefined callees, dead global stores, recursion cycles,
// constant conditions, unreachable blocks, ...). For a .ir file only the IR
// analyzers run. Both kinds additionally get the cross-function lints backed
// by internal/analysis/interproc summaries (dead parameters, unused pure
// results, constant returns, use-before-init through wrappers, unbounded
// recursion); the summary cache is shared across all files of one run.
//
// Usage:
//
//	inlinelint [flags] file.minc [file2.minc ...]
//
//	-json           emit findings as a JSON array instead of text
//	-sarif          emit findings as a SARIF 2.1.0 log instead of text
//	-severity s     only report findings at severity s (info|warning|error)
//	                or above; default info reports everything
//	-no-interproc-cache
//	                recompute interprocedural summaries from scratch
//	                (differential oracle for the summary cache)
//	-check          additionally push the module through the checked
//	                compilation pipeline (no-inline and -Os configurations)
//	                and report any invariant violation
//	-target x86|wasm  size model for -check (default x86)
//
// Exit status is 2 on usage or load errors, 1 if any finding of error
// severity (or a checked-mode violation) was reported, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"optinline/internal/analysis"
	"optinline/internal/analysis/interproc"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/diag"
	"optinline/internal/heuristic"
	"optinline/internal/ir"
	"optinline/internal/lang"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inlinelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as JSON")
		sarifOut   = fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
		sevName    = fs.String("severity", "info", "minimum severity to report: info|warning|error")
		noIPCache  = fs.Bool("no-interproc-cache", false, "recompute interprocedural summaries from scratch")
		check      = fs.Bool("check", false, "run the checked compilation pipeline as well")
		targetName = fs.String("target", "x86", "size model for -check: x86|wasm")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: inlinelint [flags] file.minc [file2.minc ...]")
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "inlinelint: -json and -sarif are mutually exclusive")
		return 2
	}
	var minSev diag.Severity
	switch *sevName {
	case "info":
		minSev = diag.Info
	case "warning":
		minSev = diag.Warning
	case "error":
		minSev = diag.Error
	default:
		fmt.Fprintf(stderr, "inlinelint: unknown severity %q (want info|warning|error)\n", *sevName)
		return 2
	}
	target := codegen.TargetX86
	switch *targetName {
	case "x86":
	case "wasm":
		target = codegen.TargetWASM
	default:
		fmt.Fprintf(stderr, "inlinelint: unknown target %q\n", *targetName)
		return 2
	}

	// One summary cache per run: structurally identical functions across
	// the file list share their summary cores.
	var ipCache *interproc.Cache
	if !*noIPCache {
		ipCache = interproc.NewCache()
	}

	var all diag.List
	for _, path := range fs.Args() {
		ds, err := lintOne(path, *check, target, ipCache)
		if err != nil {
			fmt.Fprintf(stderr, "inlinelint: %v\n", err)
			return 2
		}
		all = append(all, ds...)
	}
	all = all.MinSeverity(minSev)
	all.Sort()

	switch {
	case *sarifOut:
		data, err := all.SARIF(diag.SARIFOptions{Tool: "inlinelint", RuleDocs: ruleDocs()})
		if err != nil {
			fmt.Fprintf(stderr, "inlinelint: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	case *jsonOut:
		data, err := all.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "inlinelint: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	default:
		if text := all.Text(); text != "" {
			fmt.Fprint(stdout, text)
		}
	}
	if all.HasErrors() {
		return 1
	}
	return 0
}

// ruleDocs collects the one-line documentation of every registered
// analyzer for the SARIF rules array.
func ruleDocs() map[string]string {
	docs := map[string]string{}
	for _, info := range analysis.Analyzers() {
		docs[info.Name] = info.Doc
	}
	for _, info := range interproc.Analyzers() {
		docs[info.Name] = info.Doc
	}
	return docs
}

// lintOne lints a single file: source lints for .minc, then the IR analyzer
// suite and the interprocedural summary lints, then (with check) the checked
// compilation pipeline.
func lintOne(path string, check bool, target codegen.Target, ipCache *interproc.Cache) (diag.List, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out diag.List
	var mod *ir.Module
	switch filepath.Ext(path) {
	case ".minc":
		prog, err := lang.Parse(path, string(data))
		if err != nil {
			return nil, err
		}
		out = append(out, lang.Lint(path, prog)...)
		mod, err = lang.Lower(path, prog)
		if err != nil {
			return nil, err
		}
	case ".ir":
		mod, err = ir.Parse(path, string(data))
		if err != nil {
			return nil, err
		}
		if err := mod.Verify(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%s: unsupported extension (want .minc or .ir)", path)
	}
	out = append(out, analysis.RunModule(mod, analysis.Options{})...)

	mod.AssignSites()
	g := callgraph.Build(mod)
	ms := interproc.Analyze(mod, g, ipCache)
	out = append(out, interproc.Lints(mod, g, ms)...)

	// Analyzer positions carry the module name; point them at the file path
	// so every finding is uniformly file-addressed.
	for i := range out {
		if out[i].Pos.File == "" || out[i].Pos.File == mod.Name {
			out[i].Pos.File = path
		}
	}

	if check {
		comp := compile.NewWithOptions(mod, target, compile.Options{Check: true})
		cfgs := map[string]*callgraph.Config{
			"no-inline": callgraph.NewConfig(),
			"-Os":       heuristic.OsConfig(comp.Module(), comp.Graph()),
		}
		for name, cfg := range cfgs {
			if _, err := comp.Build(cfg); err != nil {
				out = append(out, diag.Diagnostic{
					Analyzer: "checked-compile",
					Severity: diag.Error,
					Pos:      diag.Pos{File: path},
					Message:  fmt.Sprintf("%s configuration: %v", name, err),
				})
			}
		}
	}
	return out, nil
}
