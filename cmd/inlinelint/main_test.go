package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// repoRoot makes the test run from the repository root so the file paths
// embedded in diagnostics are stable "testdata/lint/..." strings.
func repoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

func corpus(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "*.minc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/lint")
	}
	sort.Strings(files)
	return files
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestLintGoldenText(t *testing.T) {
	repoRoot(t)
	for _, src := range corpus(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{src}, &out, &errOut)
			if errOut.Len() != 0 {
				t.Fatalf("stderr: %s", errOut.String())
			}
			// The corpus is warnings and infos only; error severity would
			// change the exit code and belongs in a different test.
			if code != 0 {
				t.Fatalf("exit code = %d, want 0", code)
			}
			checkGolden(t, strings.TrimSuffix(src, ".minc")+".golden", out.Bytes())
		})
	}
}

func TestLintGoldenJSON(t *testing.T) {
	repoRoot(t)
	for _, src := range corpus(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{"-json", src}, &out, &errOut)
			if errOut.Len() != 0 {
				t.Fatalf("stderr: %s", errOut.String())
			}
			if code != 0 {
				t.Fatalf("exit code = %d, want 0", code)
			}
			checkGolden(t, strings.TrimSuffix(src, ".minc")+".json.golden", out.Bytes())
		})
	}
}

func TestLintCleanHasNoFindings(t *testing.T) {
	repoRoot(t)
	var out, errOut bytes.Buffer
	if code := run([]string{filepath.Join("testdata", "lint", "clean.minc")}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean.minc produced findings:\n%s", out.String())
	}
}

func TestLintCheckedModeClean(t *testing.T) {
	repoRoot(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-check", filepath.Join("testdata", "lint", "clean.minc")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("-check exit code = %d, stdout %s stderr %s", code, out.String(), errOut.String())
	}
}

func TestLintUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit code = %d, want 2", code)
	}
	if code := run([]string{"does-not-exist.minc"}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit code = %d, want 2", code)
	}
}
