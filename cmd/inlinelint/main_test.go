package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// repoRoot makes the test run from the repository root so the file paths
// embedded in diagnostics are stable "testdata/lint/..." strings.
func repoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

func corpus(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "*.minc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/lint")
	}
	sort.Strings(files)
	return files
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestLintGoldenText(t *testing.T) {
	repoRoot(t)
	for _, src := range corpus(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{src}, &out, &errOut)
			if errOut.Len() != 0 {
				t.Fatalf("stderr: %s", errOut.String())
			}
			// The corpus is warnings and infos only; error severity would
			// change the exit code and belongs in a different test.
			if code != 0 {
				t.Fatalf("exit code = %d, want 0", code)
			}
			checkGolden(t, strings.TrimSuffix(src, ".minc")+".golden", out.Bytes())
		})
	}
}

func TestLintGoldenJSON(t *testing.T) {
	repoRoot(t)
	for _, src := range corpus(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{"-json", src}, &out, &errOut)
			if errOut.Len() != 0 {
				t.Fatalf("stderr: %s", errOut.String())
			}
			if code != 0 {
				t.Fatalf("exit code = %d, want 0", code)
			}
			checkGolden(t, strings.TrimSuffix(src, ".minc")+".json.golden", out.Bytes())
		})
	}
}

func TestLintCleanHasNoFindings(t *testing.T) {
	repoRoot(t)
	var out, errOut bytes.Buffer
	if code := run([]string{filepath.Join("testdata", "lint", "clean.minc")}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean.minc produced findings:\n%s", out.String())
	}
}

func TestLintCheckedModeClean(t *testing.T) {
	repoRoot(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-check", filepath.Join("testdata", "lint", "clean.minc")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("-check exit code = %d, stdout %s stderr %s", code, out.String(), errOut.String())
	}
}

func TestLintUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit code = %d, want 2", code)
	}
	if code := run([]string{"does-not-exist.minc"}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit code = %d, want 2", code)
	}
}

// interprocCorpus returns the interprocedural-lint fixture pairs: each
// lint has one firing fixture and one *_ok false-positive fixture that
// must stay clean of that lint.
func interprocCorpus(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "interproc", "*.minc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/lint/interproc")
	}
	sort.Strings(files)
	return files
}

func TestInterprocLintGoldenText(t *testing.T) {
	repoRoot(t)
	for _, src := range interprocCorpus(t) {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{src}, &out, &errOut)
			if errOut.Len() != 0 {
				t.Fatalf("stderr: %s", errOut.String())
			}
			if code != 0 {
				t.Fatalf("exit code = %d, want 0", code)
			}
			checkGolden(t, strings.TrimSuffix(src, ".minc")+".golden", out.Bytes())
		})
	}
}

// TestInterprocFiringAndClean pins the contract of the fixture pairs:
// the firing fixture reports its lint, the *_ok twin does not.
func TestInterprocFiringAndClean(t *testing.T) {
	repoRoot(t)
	lints := map[string]string{
		"deadparam":    "ip-dead-param",
		"pureunused":   "pure-call",
		"constreturn":  "ip-const-return",
		"uninitglobal": "ip-uninit-global",
		"mutualrec":    "ip-unbounded-recursion",
	}
	for base, analyzer := range lints {
		for _, variant := range []string{base, base + "_ok"} {
			var out, errOut bytes.Buffer
			src := filepath.Join("testdata", "lint", "interproc", variant+".minc")
			if code := run([]string{src}, &out, &errOut); code != 0 {
				t.Fatalf("%s: exit code = %d, stderr %s", variant, code, errOut.String())
			}
			fired := strings.Contains(out.String(), "["+analyzer+"]")
			if variant == base && !fired {
				t.Errorf("%s must report %s:\n%s", variant, analyzer, out.String())
			}
			if variant != base && fired {
				t.Errorf("%s is a false-positive guard and must stay clean of %s:\n%s",
					variant, analyzer, out.String())
			}
		}
	}
}

// TestSeverityThreshold: -severity filters output and (via the filtered
// list) the exit code; the default reproduces the unfiltered behavior.
func TestSeverityThreshold(t *testing.T) {
	repoRoot(t)
	src := filepath.Join("testdata", "lint", "irdiag.minc")

	var all, dflt bytes.Buffer
	run([]string{src}, &all, &bytes.Buffer{})
	run([]string{"-severity", "info", src}, &dflt, &bytes.Buffer{})
	if all.String() != dflt.String() {
		t.Error("-severity info must match the default output")
	}

	var warn bytes.Buffer
	if code := run([]string{"-severity", "warning", src}, &warn, &bytes.Buffer{}); code != 0 {
		t.Fatalf("-severity warning exit = %d", code)
	}
	if strings.Contains(warn.String(), "info:") {
		t.Errorf("-severity warning leaked infos:\n%s", warn.String())
	}
	if !strings.Contains(warn.String(), "warning:") {
		t.Errorf("-severity warning dropped warnings:\n%s", warn.String())
	}

	// irdiag has warnings but no errors: at the error threshold the run is
	// silent and exits 0 — the form the CI examples gate relies on.
	var errOnly bytes.Buffer
	if code := run([]string{"-severity", "error", src}, &errOnly, &bytes.Buffer{}); code != 0 {
		t.Fatalf("-severity error exit = %d", code)
	}
	if errOnly.Len() != 0 {
		t.Errorf("-severity error must be silent on an error-free file:\n%s", errOnly.String())
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-severity", "bogus", src}, &out, &errOut); code != 2 {
		t.Errorf("bad severity: exit = %d, want 2", code)
	}
}

func TestSARIFGolden(t *testing.T) {
	repoRoot(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-sarif", filepath.Join("testdata", "lint", "irdiag.minc")}, &out, &errOut)
	if errOut.Len() != 0 || code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	checkGolden(t, filepath.Join("testdata", "lint", "irdiag.sarif.golden"), out.Bytes())

	var both bytes.Buffer
	if code := run([]string{"-sarif", "-json", "x.minc"}, &both, &errOut); code != 2 {
		t.Errorf("-sarif -json together: exit = %d, want 2", code)
	}
}

// TestNoInterprocCacheParity: the cached and scratch analyses must render
// byte-identical findings over the whole fixture corpus in one process
// (the cache is shared across files, so cross-file reuse is exercised).
func TestNoInterprocCacheParity(t *testing.T) {
	repoRoot(t)
	files := interprocCorpus(t)
	files = append(files, corpus(t)...)
	var cached, scratch bytes.Buffer
	ccode := run(files, &cached, &bytes.Buffer{})
	scode := run(append([]string{"-no-interproc-cache"}, files...), &scratch, &bytes.Buffer{})
	if ccode != scode || cached.String() != scratch.String() {
		t.Errorf("cached (exit %d) and -no-interproc-cache (exit %d) disagree:\n--- cached ---\n%s--- scratch ---\n%s",
			ccode, scode, cached.String(), scratch.String())
	}
}
