// Command inlinedata generates machine-learning training data for inlining
// policies, realizing the paper's Section 6 proposal: exhaustive optimal
// search as a scalable generator of *optimal* decision labels ("Good
// training data is necessary and critical to enable such research").
//
// For every exhaustively searchable file (given .minc/.ir files, or the
// synthetic corpus when no files are given) it emits one CSV row per
// inlinable, non-recursive call site: the call-site features followed by
// the optimal label.
//
// Usage:
//
//	inlinedata [flags] [file.minc ...]
//
//	-scale F      synthetic corpus scale when no files are given (default 0.5)
//	-max-space N  skip files whose recursive space exceeds N (default 2^14)
//	-train        also train/evaluate a logistic model on the dump (report to stderr)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/mlheur"
	"optinline/internal/search"
	"optinline/internal/source"
	"optinline/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inlinedata:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Float64("scale", 0.5, "synthetic corpus scale when no files are given")
		maxSpace = flag.Uint64("max-space", 1<<14, "skip files with recursive space above this")
		train    = flag.Bool("train", false, "train and evaluate a logistic model on the dump")
	)
	flag.Parse()

	var files []workload.File
	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			m, err := source.Load(path)
			if err != nil {
				return err
			}
			files = append(files, workload.File{Name: path, Module: m})
		}
	} else {
		for _, p := range workload.SPECProfiles() {
			p.Files = int(float64(p.Files)**scale) + 1
			p.TotalEdges = int(float64(p.TotalEdges)**scale) + 1
			files = append(files, workload.Generate(p).Files...)
		}
	}

	header := append([]string{"file", "site"}, mlheur.FeatureNames[:]...)
	header = append(header, "optimal_inline")
	fmt.Println(strings.Join(header, ","))

	var examples []mlheur.Example
	dumped, skipped := 0, 0
	for _, f := range files {
		comp := compile.New(f.Module, codegen.TargetX86)
		g := comp.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		res, ok := search.Optimal(comp, search.Options{MaxSpace: *maxSpace})
		if !ok {
			skipped++
			continue
		}
		// One summary analysis per file; each edge's features are then a
		// table lookup instead of a whole-module reanalysis.
		extractor := mlheur.NewExtractor(comp.Module(), g, nil)
		for _, e := range g.Edges {
			if e.Recursive {
				continue
			}
			x := extractor.Extract(e)
			row := make([]string, 0, len(header))
			row = append(row, f.Name, fmt.Sprint(e.Site))
			for _, v := range x {
				row = append(row, trimFloat(v))
			}
			label := "0"
			inline := res.Config.Inline(e.Site)
			if inline {
				label = "1"
			}
			row = append(row, label)
			fmt.Println(strings.Join(row, ","))
			examples = append(examples, mlheur.Example{X: x, Inline: inline})
			dumped++
		}
	}
	fmt.Fprintf(os.Stderr, "dumped %d decisions from %d files (%d skipped: space too large)\n",
		dumped, len(files), skipped)

	if *train && len(examples) > 0 {
		model, err := mlheur.Train(examples, mlheur.TrainOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trained logistic model: accuracy %.1f%% (majority %.1f%%)\n",
			model.Accuracy(examples)*100, mlheur.MajorityBaseline(examples)*100)
		for j, name := range mlheur.FeatureNames {
			fmt.Fprintf(os.Stderr, "  %-24s %+0.3f\n", name, model.W[j])
		}
	}
	return nil
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
