// Command inlinetune runs the paper's local inlining autotuner on one
// translation unit and reports per-round progress.
//
// Usage:
//
//	inlinetune [flags] file.minc
//	inlinetune -link [flags] a.minc b.minc ...
//
//	-link                 link all argument files into one module (LTO-style)
//	                      and autotune it with per-component lockstep sessions
//	-no-shard             with -link: run the classic whole-module tuner on
//	                      one merged compiler (differential oracle — stdout
//	                      is byte-identical)
//	-link-dup p           with -link: exported symbols defined in several
//	                      units are an error (default) or renamed (rename)
//	-relink script        replay an edit script (patch <tu> <path> / tune
//	                      lines) against an incremental re-link session:
//	                      content-unchanged components replay their recorded
//	                      tuning trace, only dirty components probe edges
//	-no-relink            with -relink: cold full link at every step
//	                      (differential oracle — stdout is byte-identical)
//	-init clean|os|both   starting configuration(s) (default both)
//	-rounds N             tuning rounds (default 4)
//	-target x86|wasm      size model (default x86)
//	-workers N            parallel per-edge evaluations
//	-dot                  print the tuned call graph as DOT
//	-no-delta             disable the incremental delta-evaluation engine;
//	                      every probe prices a whole configuration
//	-exact-components N   after the rounds, re-solve exactly (branch-and-
//	                      bound) every call-graph component whose recursive
//	                      space fits N tree evaluations, under the tuned
//	                      labels of the rest (0 disables; try 4096)
//	-no-prune             make the exact-component polish use the exhaustive
//	                      recursion instead of branch-and-bound (oracle)
//	-no-fncache           disable the content-addressed per-function compile
//	                      cache (differential oracle)
//	-objective o          tuned objective: size (default), weighted
//	                      (bytes + lambda*cycles), cycles, or pareto (a
//	                      lambda sweep printing the size/speed frontier);
//	                      cycle objectives profile the no-inline baseline
//	                      once and reprice every probe incrementally
//	-lambda F             cycle weight for -objective weighted (default 0.1)
//	-lambdas l1,l2,...    interior weights for -objective pareto
//	-entry f, -args a,b   profiled root and arguments (default entry(7))
//	-fuel N               profiling interpretation fuel
//	-cache-bytes N        modelled i-cache capacity (0 = default)
//	-no-cycledelta        cycle pricer evaluates whole configurations
//	                      instead of repricing incrementally (differential
//	                      oracle — stdout is byte-identical)
//	-cache-dir d          persist the per-function content cache in directory d
//	-cpuprofile f         write a CPU profile to f
//	-memprofile f         write a heap profile to f at exit
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/interp"
	"optinline/internal/ir"
	"optinline/internal/link"
	"optinline/internal/source"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inlinetune:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		initMode     = flag.String("init", "both", "starting point: clean|os|both")
		rounds       = flag.Int("rounds", 4, "tuning rounds")
		targetName   = flag.String("target", "x86", "size model: x86|wasm")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel per-edge evaluations")
		dot          = flag.Bool("dot", false, "print tuned call graph as DOT")
		groups       = flag.Bool("groups", false, "also test per-callee group inlining (paper 5.2.1 extension)")
		incr         = flag.Bool("incremental", false, "incremental rounds: only re-tune changed regions (paper 6 extension)")
		noDelta      = flag.Bool("no-delta", false, "disable the incremental delta-evaluation engine (differential oracle)")
		exactComps   = flag.Uint64("exact-components", 0, "re-solve components whose recursive space fits N evaluations exactly after the rounds (0 = off)")
		noPrune      = flag.Bool("no-prune", false, "exhaustive recursion instead of branch-and-bound in the exact-component polish (differential oracle)")
		noFnCache    = flag.Bool("no-fncache", false, "disable the content-addressed per-function cache (differential oracle)")
		objective    = flag.String("objective", "size", "tuned objective: size|weighted|cycles|pareto")
		lambda       = flag.Float64("lambda", 0.1, "cycle weight for -objective weighted")
		lambdas      = flag.String("lambdas", "0.01,0.1,1", "interior weights for -objective pareto (comma-separated)")
		entryName    = flag.String("entry", "entry", "profiled root function for cycle objectives")
		entryArgs    = flag.String("args", "7", "profiled root arguments (comma-separated integers)")
		fuel         = flag.Int64("fuel", 20_000_000, "profiling interpretation fuel")
		cacheBytes   = flag.Int("cache-bytes", 0, "modelled i-cache capacity in bytes (0 = interpreter default)")
		noCycleDelta = flag.Bool("no-cycledelta", false, "cycle pricer evaluates whole configurations instead of repricing incrementally (differential oracle)")
		cacheDir     = flag.String("cache-dir", "", "persist the per-function content cache in this directory")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file at exit")
		doLink       = flag.Bool("link", false, "link all argument files into one module and autotune it component-sharded")
		noShard      = flag.Bool("no-shard", false, "with -link: whole-module tuner on one merged compiler (oracle)")
		linkDup      = flag.String("link-dup", "error", "with -link: duplicate exported symbol policy: error|rename")
		relink       = flag.String("relink", "", "with -link: replay an edit script against an incremental session")
		noRelink     = flag.Bool("no-relink", false, "with -relink: cold full link at every step (differential oracle)")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "inlinetune: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "inlinetune: -memprofile:", err)
			}
		}()
	}
	if !*doLink && *relink == "" && flag.NArg() != 1 {
		return fmt.Errorf("usage: inlinetune [flags] file.minc")
	}
	target := codegen.TargetX86
	if *targetName == "wasm" {
		target = codegen.TargetWASM
	}
	cf, err := parseCycleFlags(*objective, *lambda, *lambdas, *entryName, *entryArgs,
		*fuel, *cacheBytes, *noCycleDelta)
	if err != nil {
		return err
	}
	if cf.objective != "size" && (*groups || *incr || *exactComps > 0) {
		return fmt.Errorf("-objective %s does not combine with -groups, -incremental, or -exact-components", cf.objective)
	}
	fncache, err := compile.OpenFnCache(*cacheDir)
	if err != nil {
		return err
	}
	if *doLink || *relink != "" {
		if cf.objective == "pareto" {
			return fmt.Errorf("-objective pareto does not combine with -link")
		}
		if *relink != "" {
			if *noShard {
				return fmt.Errorf("-relink replay is always sharded; -no-shard applies to one-shot -link runs")
			}
			return runRelinkTune(flag.Args(), target, fncache, *cacheDir, *linkDup, *initMode,
				*rounds, *workers, *noDelta, *noFnCache, cf, *relink, *noRelink)
		}
		return runLinkTune(flag.Args(), target, fncache, *cacheDir, *linkDup, *initMode,
			*rounds, *workers, *noShard, *noDelta, *noFnCache, cf)
	}
	mod, err := source.Load(flag.Arg(0))
	if err != nil {
		return err
	}
	comp := compile.NewWithOptions(mod, target, compile.Options{FnCache: fncache})
	if *noDelta {
		comp.SetDelta(false)
	}
	if *noFnCache {
		comp.SetFnCache(false)
	}
	g := comp.Graph()
	osCfg := heuristic.OsConfig(comp.Module(), g)
	osSize := comp.Size(osCfg)
	noInline := comp.Size(callgraph.NewConfig())
	fmt.Printf("%s: %d inlinable calls; no-inline %d bytes, -Os %d bytes\n",
		flag.Arg(0), len(g.Edges), noInline, osSize)
	if cf.objective != "size" {
		return runCycleTune(comp, osCfg, cf, *initMode, *rounds, *workers)
	}

	opts := autotune.Options{Rounds: *rounds, Workers: *workers}
	tune := func(init *callgraph.Config) autotune.Result {
		if *groups || *incr || *exactComps > 0 {
			return autotune.TuneExtended(comp, init, autotune.ExtOptions{
				Options: opts, GroupCallees: *groups, Incremental: *incr,
				ExactComponents: *exactComps, NoPrune: *noPrune,
			})
		}
		return autotune.Tune(comp, init, opts)
	}
	report := func(name string, res autotune.Result) {
		fmt.Printf("\n%s (init %d bytes):\n", name, res.InitSize)
		for _, r := range res.Rounds {
			fmt.Printf("  round %d: %d bytes (%.1f%% of -Os), %d inlined / %d not, %d toggles\n",
				r.Round, r.Size, pct(r.Size, osSize), r.Inlined, r.NotInlined, r.Toggles)
		}
		fmt.Printf("  best: %d bytes (%.1f%% of -Os), inlining %v\n",
			res.Size, pct(res.Size, osSize), res.Config.InlineSites())
	}

	var best autotune.Result
	switch *initMode {
	case "clean":
		best = tune(nil)
		report("clean slate", best)
	case "os":
		best = tune(osCfg)
		report("-Os initialized", best)
	case "both":
		clean := tune(nil)
		inited := tune(osCfg)
		report("clean slate", clean)
		report("-Os initialized", inited)
		best = clean
		if inited.Size < best.Size {
			best = inited
		}
	default:
		return fmt.Errorf("unknown init mode %q", *initMode)
	}

	fmt.Printf("\nfinal: %d bytes = %.1f%% of -Os (%.1f%% of no-inline), %d compilations\n",
		best.Size, pct(best.Size, osSize), pct(best.Size, noInline), comp.Evaluations())
	if *cacheDir != "" {
		if err := fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "inlinetune:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fn content cache: %v\n", fncache.Stats())
	if *dot {
		fmt.Println()
		fmt.Println(g.DOT(flag.Arg(0), best.Config))
	}
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

// cycleFlags bundles the cycle-objective knobs shared by the single-file
// and -link paths.
type cycleFlags struct {
	objective    string // size|weighted|cycles|pareto
	lambda       float64
	lambdas      []float64
	entry        string
	args         []int64
	fuel         int64
	cacheBytes   int
	noCycleDelta bool
}

func parseCycleFlags(objective string, lambda float64, lambdas, entry, args string,
	fuel int64, cacheBytes int, noCycleDelta bool) (cycleFlags, error) {
	cf := cycleFlags{
		objective: objective, lambda: lambda, entry: entry,
		fuel: fuel, cacheBytes: cacheBytes, noCycleDelta: noCycleDelta,
	}
	switch objective {
	case "size", "weighted", "cycles", "pareto":
	default:
		return cf, fmt.Errorf("-objective: unknown objective %q (want size, weighted, cycles, or pareto)", objective)
	}
	for _, f := range strings.Split(lambdas, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return cf, fmt.Errorf("-lambdas: bad weight %q", f)
		}
		cf.lambdas = append(cf.lambdas, v)
	}
	for _, a := range strings.Split(args, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return cf, fmt.Errorf("-args: bad argument %q", a)
		}
		cf.args = append(cf.args, v)
	}
	return cf, nil
}

// pricerFor profiles the no-inline baseline and wraps it in a cycle pricer.
func pricerFor(comp *compile.Compiler, cf cycleFlags) (*compile.CyclePricer, *interp.Profile, error) {
	built, err := comp.Build(callgraph.NewConfig())
	if err != nil {
		return nil, nil, err
	}
	_, prof, err := interp.Collect(built, cf.entry, cf.args, interp.Options{Fuel: cf.fuel})
	if err != nil {
		return nil, nil, fmt.Errorf("profiling %s%v: %w", cf.entry, cf.args, err)
	}
	pricer, err := comp.NewCyclePricer(prof, compile.CycleOptions{CacheBytes: cf.cacheBytes})
	if err != nil {
		return nil, nil, err
	}
	if cf.noCycleDelta {
		pricer.SetCycleDelta(false)
	}
	return pricer, prof, nil
}

// runCycleTune tunes one translation unit for a cycle-aware objective.
// stdout is byte-identical with and without -no-cycledelta.
func runCycleTune(comp *compile.Compiler, osCfg *callgraph.Config, cf cycleFlags,
	initMode string, rounds, workers int) error {
	pricer, prof, err := pricerFor(comp, cf)
	if err != nil {
		return err
	}
	fmt.Printf("profiled %s%v: %d frames, %d cycles at no-inline (i-cache %d bytes)\n",
		cf.entry, cf.args, prof.TotalFrames(), prof.Res.Cycles, pricer.CacheBytes())
	opts := autotune.Options{Rounds: rounds, Workers: workers}

	if cf.objective == "pareto" {
		pts := autotune.Pareto(comp, pricer, nil, cf.lambdas, opts)
		fmt.Printf("\npareto frontier (%d points):\n", len(pts))
		for _, p := range pts {
			fmt.Printf("  lambda %8s: %6d bytes, %10d cycles, inlining %d of %d sites\n",
				lambdaLabel(p.Lambda), p.Size, p.Cycles, p.Config.InlineCount(), len(comp.Graph().Sites()))
		}
		fmt.Fprintf(os.Stderr, "cycle pricer: %v\n", pricer.Stats())
		return nil
	}

	cost := func(r autotune.Result) float64 {
		if cf.objective == "cycles" {
			return float64(r.Cycles)
		}
		return float64(r.Size) + cf.lambda*float64(r.Cycles)
	}
	tune := func(init *callgraph.Config) autotune.Result {
		if cf.objective == "cycles" {
			return autotune.TuneCycles(comp, pricer, init, opts)
		}
		return autotune.TuneWeighted(comp, pricer, cf.lambda, init, opts)
	}
	report := func(name string, res autotune.Result) {
		fmt.Printf("\n%s, objective %s (init %d bytes, %d cycles):\n",
			name, objectiveLabel(cf), res.InitSize, res.InitCycles)
		for _, r := range res.Rounds {
			fmt.Printf("  round %d: %d bytes, %d cycles, %d inlined / %d not, %d toggles\n",
				r.Round, r.Size, r.Cycles, r.Inlined, r.NotInlined, r.Toggles)
		}
		fmt.Printf("  best: %d bytes, %d cycles, inlining %v\n",
			res.Size, res.Cycles, res.Config.InlineSites())
	}

	var best autotune.Result
	switch initMode {
	case "clean":
		best = tune(nil)
		report("clean slate", best)
	case "os":
		best = tune(osCfg)
		report("-Os initialized", best)
	case "both":
		clean := tune(nil)
		inited := tune(osCfg)
		report("clean slate", clean)
		report("-Os initialized", inited)
		best = clean
		if cost(inited) < cost(best) {
			best = inited
		}
	default:
		return fmt.Errorf("unknown init mode %q", initMode)
	}
	fmt.Printf("\nfinal: %d bytes, %d cycles, %d compilations\n",
		best.Size, best.Cycles, comp.Evaluations())
	fmt.Fprintf(os.Stderr, "cycle pricer: %v\n", pricer.Stats())
	return nil
}

func lambdaLabel(l float64) string {
	switch {
	case l == 0:
		return "size"
	case math.IsInf(l, 1):
		return "cycles"
	default:
		return fmt.Sprintf("%g", l)
	}
}

func objectiveLabel(cf cycleFlags) string {
	if cf.objective == "weighted" {
		return fmt.Sprintf("bytes + %g*cycles", cf.lambda)
	}
	return cf.objective
}

// runLinkTune links the argument files and autotunes the merged module with
// per-component lockstep sessions (or the -no-shard whole-module oracle).
// stdout is mode-independent; counters go to stderr.
func runLinkTune(files []string, target codegen.Target, fncache *compile.FnCache,
	cacheDir, dupPolicy, initMode string, rounds, workers int,
	noShard, noDelta, noFnCache bool, cf cycleFlags) error {
	if len(files) == 0 {
		return fmt.Errorf("usage: inlinetune -link [flags] a.minc b.minc ...")
	}
	var dup link.DupPolicy
	switch dupPolicy {
	case "error":
		dup = link.DupExportedError
	case "rename":
		dup = link.DupExportedRename
	default:
		return fmt.Errorf("-link-dup: unknown policy %q (want error or rename)", dupPolicy)
	}
	tus := make([]link.TU, 0, len(files))
	for _, path := range files {
		path := path
		tus = append(tus, link.LazyTU(path, func() (*ir.Module, error) {
			return source.Load(path)
		}))
	}
	l, err := link.New(tus, link.Options{DupExported: dup})
	if err != nil {
		return err
	}
	pl := l.Plan()
	printLinkTunePlanLine(pl)

	opts := link.TuneOptions{
		ShardOptions: link.ShardOptions{
			Target:  target,
			Compile: compile.Options{FnCache: fncache},
			Configure: func(c *compile.Compiler) {
				if noDelta {
					c.SetDelta(false)
				}
				if noFnCache {
					c.SetFnCache(false)
				}
			},
			Workers: workers,
			NoShard: noShard,
		},
		Rounds: rounds,
	}
	cycleAware := cf.objective != "size"
	if cycleAware {
		switch cf.objective {
		case "weighted":
			opts.Objective = link.ObjectiveWeighted
		case "cycles":
			opts.Objective = link.ObjectiveCycles
		}
		opts.Lambda = cf.lambda
		opts.Entry = cf.entry
		opts.Args = cf.args
		opts.Fuel = cf.fuel
		opts.CacheBytes = cf.cacheBytes
		opts.NoCycleDelta = cf.noCycleDelta
	}
	report := func(name string, tr link.TuneResult) {
		if !cycleAware {
			reportLinkTuneSize(pl, name, tr)
			return
		}
		res := tr.Result
		fmt.Printf("\n%s, objective %s (init %d bytes, %d cycles):\n",
			name, objectiveLabel(cf), res.InitSize, res.InitCycles)
		for _, r := range res.Rounds {
			fmt.Printf("  round %d: %d bytes, %d cycles, %d inlined / %d not, %d toggles\n",
				r.Round, r.Size, r.Cycles, r.Inlined, r.NotInlined, r.Toggles)
		}
		fmt.Printf("  best: %d bytes, %d cycles, inlining %d of %d sites\n",
			res.Size, res.Cycles, res.Config.InlineCount(), len(pl.Edges))
		printTuneComponents(tr)
	}
	tuneOne := func(init link.TuneInit) (link.TuneResult, error) {
		o := opts
		o.Init = init
		return l.Tune(o)
	}

	var best link.TuneResult
	var evals int64
	switch initMode {
	case "clean":
		tr, err := tuneOne(link.InitClean)
		if err != nil {
			return err
		}
		report("clean slate", tr)
		best, evals = tr, tr.Evaluations
	case "os":
		tr, err := tuneOne(link.InitOs)
		if err != nil {
			return err
		}
		report("-Os initialized", tr)
		best, evals = tr, tr.Evaluations
	case "both":
		clean, err := tuneOne(link.InitClean)
		if err != nil {
			return err
		}
		inited, err := tuneOne(link.InitOs)
		if err != nil {
			return err
		}
		report("clean slate", clean)
		report("-Os initialized", inited)
		best = clean
		linkCost := func(tr link.TuneResult) float64 {
			switch cf.objective {
			case "cycles":
				return float64(tr.Result.Cycles)
			case "weighted":
				return float64(tr.Result.Size) + cf.lambda*float64(tr.Result.Cycles)
			}
			return float64(tr.Result.Size)
		}
		if linkCost(inited) < linkCost(best) {
			best = inited
		}
		evals = clean.Evaluations + inited.Evaluations
	default:
		return fmt.Errorf("unknown init mode %q", initMode)
	}
	if cycleAware {
		fmt.Printf("\nfinal: %d bytes, %d cycles, inlining %d of %d sites\n",
			best.Result.Size, best.Result.Cycles, best.Result.Config.InlineCount(), len(pl.Edges))
		fmt.Fprintf(os.Stderr, "cycle pricer: %v\n", best.Cycle)
	} else {
		fmt.Printf("\nfinal: %d bytes, inlining %d of %d sites\n",
			best.Result.Size, best.Result.Config.InlineCount(), len(pl.Edges))
	}

	fmt.Fprintf(os.Stderr, "evaluations: %d compilations (config cache %v)\n", evals, best.ConfigCache)
	fmt.Fprintf(os.Stderr, "function cache: %v\n", best.FuncCache)
	if cacheDir != "" {
		if err := fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "inlinetune:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fn content cache: %v\n", fncache.Stats())
	return nil
}

func printLinkTunePlanLine(pl *link.Plan) {
	fmt.Printf("linked %d TUs: %d functions, %d inlinable call sites (%d cross-TU, %d locals renamed), %d components\n",
		len(pl.TUs), len(pl.Funcs), len(pl.Edges), pl.CrossTU, pl.Renamed, len(pl.Components))
}

func printTuneComponents(tr link.TuneResult) {
	for _, cs := range tr.Components {
		fmt.Printf("    component %2d: %3d funcs, %3d sites, inlined %3d\n",
			cs.Index, cs.Funcs, cs.Edges, cs.Inlined)
	}
}

// reportLinkTuneSize renders one size-objective tuning report. Both the
// one-shot -link path and both -relink replay modes print through it, so
// the -no-relink byte-diff gate holds by construction.
func reportLinkTuneSize(pl *link.Plan, name string, tr link.TuneResult) {
	res := tr.Result
	fmt.Printf("\n%s (init %d bytes):\n", name, res.InitSize)
	for _, r := range res.Rounds {
		fmt.Printf("  round %d: %d bytes, %d inlined / %d not, %d toggles\n",
			r.Round, r.Size, r.Inlined, r.NotInlined, r.Toggles)
	}
	fmt.Printf("  best: %d bytes, inlining %d of %d sites\n",
		res.Size, res.Config.InlineCount(), len(pl.Edges))
	printTuneComponents(tr)
}

// runRelinkTune replays a -relink edit script of patch and tune steps.
// Warm mode drives an incremental link.Session: a tune step replays the
// recorded per-round trace of every content-unchanged component and probes
// edges only in dirty ones. -no-relink re-links and re-tunes from scratch
// at every step — the differential oracle whose stdout must byte-match.
// Cycle objectives are rejected up front in BOTH modes (the session's
// typed link.CycleObjectiveError would only fire warm, and a mode-
// dependent error would break the byte-diff).
func runRelinkTune(files []string, target codegen.Target, fncache *compile.FnCache,
	cacheDir, dupPolicy, initMode string, rounds, workers int,
	noDelta, noFnCache bool, cf cycleFlags, script string, noRelink bool) error {
	if len(files) == 0 {
		return fmt.Errorf("usage: inlinetune -relink script [flags] a.minc b.minc ...")
	}
	if cf.objective != "size" {
		return fmt.Errorf("-relink replays the size objective only; -objective %s needs a whole-program profile that edits invalidate (run one-shot -link instead)", cf.objective)
	}
	switch initMode {
	case "clean", "os", "both":
	default:
		return fmt.Errorf("unknown init mode %q", initMode)
	}
	var dup link.DupPolicy
	switch dupPolicy {
	case "error":
		dup = link.DupExportedError
	case "rename":
		dup = link.DupExportedRename
	default:
		return fmt.Errorf("-link-dup: unknown policy %q (want error or rename)", dupPolicy)
	}
	scriptData, err := os.ReadFile(script)
	if err != nil {
		return fmt.Errorf("-relink: %w", err)
	}
	ops, err := link.ParseEditScript(scriptData)
	if err != nil {
		return fmt.Errorf("-relink %s: %w", script, err)
	}
	scriptDir := filepath.Dir(script)

	tus := make([]link.TU, 0, len(files))
	for _, path := range files {
		path := path
		tus = append(tus, link.LazyTU(path, func() (*ir.Module, error) {
			return source.Load(path)
		}))
	}
	var sess *link.Session
	cur := append([]link.TU(nil), tus...) // -no-relink: current contents
	if !noRelink {
		sess, err = link.NewSession(tus, link.SessionOptions{Link: link.Options{DupExported: dup}})
		if err != nil {
			return err
		}
	} else if _, err := link.New(cur, link.Options{DupExported: dup}); err != nil {
		return err
	}

	opts := link.TuneOptions{
		ShardOptions: link.ShardOptions{
			Target:  target,
			Compile: compile.Options{FnCache: fncache},
			Configure: func(c *compile.Compiler) {
				if noDelta {
					c.SetDelta(false)
				}
				if noFnCache {
					c.SetFnCache(false)
				}
			},
			Workers: workers,
		},
		Rounds: rounds,
	}
	for step, op := range ops {
		switch op.Verb {
		case "patch":
			path := op.Path
			if !filepath.IsAbs(path) {
				path = filepath.Join(scriptDir, path)
			}
			fmt.Printf("== step %d: patch %s <- %s ==\n", step+1, op.TU, op.Path)
			tu := link.LazyTU(op.TU, func() (*ir.Module, error) { return source.Load(path) })
			if noRelink {
				idx := -1
				for i := range cur {
					if cur[i].Name == op.TU {
						idx = i
						break
					}
				}
				if idx < 0 {
					return fmt.Errorf("step %d: link: no unit named %q", step+1, op.TU)
				}
				cur[idx] = tu
				if _, err := link.New(cur, link.Options{DupExported: dup}); err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
			} else {
				rep, err := sess.ReplaceNamed(tu)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				if rep.PlanReused {
					fmt.Fprintf(os.Stderr, "step %d: body-only edit, plan reused\n", step+1)
				} else {
					fmt.Fprintf(os.Stderr, "step %d: link surface changed, plan rebuilt\n", step+1)
				}
			}
		case "tune":
			fmt.Printf("== step %d: tune ==\n", step+1)
			var (
				pl      *link.Plan
				tuneOne func(link.TuneInit) (link.TuneResult, link.RelinkInfo, error)
			)
			if noRelink {
				l, err := link.New(cur, link.Options{DupExported: dup})
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				pl = l.Plan()
				tuneOne = func(init link.TuneInit) (link.TuneResult, link.RelinkInfo, error) {
					o := opts
					o.Init = init
					tr, err := l.Tune(o)
					return tr, link.RelinkInfo{}, err
				}
			} else {
				pl = sess.Plan()
				tuneOne = func(init link.TuneInit) (link.TuneResult, link.RelinkInfo, error) {
					o := opts
					o.Init = init
					return sess.Tune(o)
				}
			}
			printLinkTunePlanLine(pl)
			reportInfo := func(init string, info link.RelinkInfo) {
				if noRelink {
					return
				}
				fmt.Fprintf(os.Stderr, "step %d (%s): components solved %d, replayed %d; residual solved %d, replayed %d\n",
					step+1, init, info.ComponentsSolved, info.ComponentsReplayed, info.ResidualSolved, info.ResidualReplayed)
			}
			var best link.TuneResult
			switch initMode {
			case "clean":
				tr, info, err := tuneOne(link.InitClean)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				reportLinkTuneSize(pl, "clean slate", tr)
				reportInfo("clean", info)
				best = tr
			case "os":
				tr, info, err := tuneOne(link.InitOs)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				reportLinkTuneSize(pl, "-Os initialized", tr)
				reportInfo("os", info)
				best = tr
			case "both":
				clean, cInfo, err := tuneOne(link.InitClean)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				inited, oInfo, err := tuneOne(link.InitOs)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				reportLinkTuneSize(pl, "clean slate", clean)
				reportLinkTuneSize(pl, "-Os initialized", inited)
				reportInfo("clean", cInfo)
				reportInfo("os", oInfo)
				best = clean
				if inited.Result.Size < best.Result.Size {
					best = inited
				}
			}
			fmt.Printf("\nfinal: %d bytes, inlining %d of %d sites\n",
				best.Result.Size, best.Result.Config.InlineCount(), len(pl.Edges))
		case "search":
			return fmt.Errorf("step %d: search steps replay with inlinesearch -relink", step+1)
		}
	}
	if cacheDir != "" {
		if err := fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "inlinetune:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fn content cache: %v\n", fncache.Stats())
	return nil
}
