// Command inlinesearch exhaustively searches the recursively partitioned
// inlining space of one translation unit and reports the optimal
// configuration, comparing it with the -Os heuristic (the paper's roofline
// analysis for a single file).
//
// Usage:
//
//	inlinesearch [flags] file.minc
//	inlinesearch -link [flags] a.minc b.minc ...
//
//	-link               link all argument files into one module (LTO-style)
//	                    and run the component-sharded optimal search on it
//	-no-shard           with -link: solve the same components on one merged
//	                    compiler instead of per-component sub-modules
//	                    (differential oracle — stdout is byte-identical)
//	-link-dup p         with -link: exported symbols defined in several units
//	                    are an error (default) or are renamed apart (rename)
//	-relink script      replay an edit script (patch <tu> <path> / search
//	                    lines) against an incremental re-link session:
//	                    content-unchanged components replay their cached
//	                    optimum, only dirty components are re-searched
//	-no-relink          with -relink: re-link and search from scratch at
//	                    every step (differential oracle — stdout is
//	                    byte-identical to the incremental session)
//	-target x86|wasm    size model (default x86)
//	-max-space N        abort if the recursive space exceeds N evaluations
//	                    (with -link the bound applies per component)
//	-jobs N             parallel subtree evaluations (default GOMAXPROCS;
//	                    results are bit-identical for every value)
//	-workers N          deprecated alias for -jobs
//	-dot                print optimal-vs-heuristic call graphs as DOT
//	-check              checked compilation: verify IR invariants after
//	                    every inline step and opt pass of every evaluation
//	-no-delta           disable the incremental delta-evaluation engine;
//	                    leaf/combine evaluations price whole configurations
//	-no-prune           disable the branch-and-bound layer (component memo +
//	                    admissible bounds); run the exhaustive recursion
//	                    instead (differential oracle — output is identical)
//	-no-fncache         disable the content-addressed per-function compile
//	                    cache (differential oracle — sizes are identical)
//	-cache-dir d        persist the per-function content cache in directory d
//	-cpuprofile f       write a CPU profile to f
//	-memprofile f       write a heap profile to f at exit
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/ir"
	"optinline/internal/link"
	"optinline/internal/search"
	"optinline/internal/source"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inlinesearch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		targetName = flag.String("target", "x86", "size model: x86|wasm")
		maxSpace   = flag.Uint64("max-space", 1<<20, "abort beyond this many evaluations")
		jobs       = flag.Int("jobs", 0, "parallel subtree evaluations (0 = GOMAXPROCS)")
		workers    = flag.Int("workers", 0, "deprecated alias for -jobs")
		dot        = flag.Bool("dot", false, "print DOT call graphs (optimal vs heuristic)")
		tree       = flag.Bool("tree", false, "print the materialized inlining tree (paper Figure 6)")
		check      = flag.Bool("check", false, "checked compilation: verify IR invariants after every inline step and opt pass")
		noDelta    = flag.Bool("no-delta", false, "disable the incremental delta-evaluation engine (differential oracle)")
		noPrune    = flag.Bool("no-prune", false, "disable the branch-and-bound search layer (differential oracle)")
		noFnCache  = flag.Bool("no-fncache", false, "disable the content-addressed per-function cache (differential oracle)")
		cacheDir   = flag.String("cache-dir", "", "persist the per-function content cache in this directory")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
		doLink     = flag.Bool("link", false, "link all argument files into one module and search it component-sharded")
		noShard    = flag.Bool("no-shard", false, "with -link: single merged compiler instead of per-component shards (oracle)")
		linkDup    = flag.String("link-dup", "error", "with -link: duplicate exported symbol policy: error|rename")
		relink     = flag.String("relink", "", "with -link: replay an edit script against an incremental session")
		noRelink   = flag.Bool("no-relink", false, "with -relink: cold full link at every step (differential oracle)")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "inlinesearch: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "inlinesearch: -memprofile:", err)
			}
		}()
	}
	if *jobs == 0 && *workers != 0 {
		*jobs = *workers
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	if !*doLink && *relink == "" && flag.NArg() != 1 {
		return fmt.Errorf("usage: inlinesearch [flags] file.minc")
	}
	target := codegen.TargetX86
	if *targetName == "wasm" {
		target = codegen.TargetWASM
	}
	fncache, err := compile.OpenFnCache(*cacheDir)
	if err != nil {
		return err
	}
	if *doLink || *relink != "" {
		return runLink(linkRun{
			files: flag.Args(), target: target, maxSpace: *maxSpace, jobs: *jobs,
			check: *check, noDelta: *noDelta, noPrune: *noPrune, noFnCache: *noFnCache,
			fncache: fncache, cacheDir: *cacheDir, noShard: *noShard, dup: *linkDup,
			relink: *relink, noRelink: *noRelink,
		})
	}
	mod, err := source.Load(flag.Arg(0))
	if err != nil {
		return err
	}
	comp := compile.NewWithOptions(mod, target, compile.Options{Check: *check, FnCache: fncache})
	if *noDelta {
		comp.SetDelta(false)
	}
	if *noFnCache {
		comp.SetFnCache(false)
	}
	g := comp.Graph()
	fmt.Printf("%s: %d functions, %d inlinable call sites\n", flag.Arg(0), len(g.Nodes), len(g.Edges))
	fmt.Printf("naive space: 2^%.0f configurations\n", search.NaiveSpaceLog2(g))
	rec, capped := search.RecursiveSpaceSize(g, *maxSpace)
	if capped {
		return fmt.Errorf("recursive space exceeds %d evaluations; raise -max-space", *maxSpace)
	}
	fmt.Printf("recursively partitioned space: %d evaluations (2^%.1f)\n", rec, math.Log2(float64(rec)))

	res, ok := search.Optimal(comp, search.Options{Workers: *jobs, MaxSpace: *maxSpace, NoPrune: *noPrune})
	if !ok {
		return fmt.Errorf("search aborted")
	}
	fmt.Fprintf(os.Stderr, "search pruning: %v\n", res.Prune)
	if *cacheDir != "" {
		if err := fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "inlinesearch:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fn content cache: %v\n", fncache.Stats())
	noInline := comp.Size(callgraph.NewConfig())
	hc := heuristic.OsConfig(comp.Module(), g)
	heurSize := comp.Size(hc)

	fmt.Printf("\nno inlining:    %6d bytes\n", noInline)
	fmt.Printf("-Os heuristic:  %6d bytes (%.1f%% of optimal)\n", heurSize, f(heurSize, res.Size))
	fmt.Printf("optimal:        %6d bytes, inlining %d of %d sites\n", res.Size, res.Config.InlineCount(), len(g.Edges))
	fmt.Printf("evaluations: %d configurations compiled (config cache %v)\n", res.Evaluations, comp.ConfigCacheStats())
	fmt.Printf("function cache: %v\n", comp.FuncCacheStats())
	fmt.Printf("optimal inline sites: %v\n", res.Config.InlineSites())

	matrix := callgraph.Agreement(g.Sites(), res.Config, hc)
	fmt.Printf("agreement optimal-vs-heuristic: both-no %d, heur-only %d, opt-only %d, both %d\n",
		matrix[0][0], matrix[0][1], matrix[1][0], matrix[1][1])

	if comp.Checked() {
		if err := comp.CheckFailure(); err != nil {
			return fmt.Errorf("invariant violation during search: %w", err)
		}
		fmt.Printf("checked mode: all %d evaluations passed per-step verification\n", comp.Evaluations())
	}

	if *dot {
		fmt.Println()
		fmt.Println(g.SideBySideDOT(flag.Arg(0), "optimal", res.Config, "heuristic", hc))
	}
	if *tree {
		root, err := search.BuildTree(g, 1<<12)
		if err != nil {
			fmt.Printf("\ninlining tree: %v (too large to materialize)\n", err)
		} else {
			fmt.Printf("\ninlining tree (Figure 6 view):\n%s", root.String())
		}
	}
	return nil
}

func f(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

// linkRun carries the parsed flags of a -link invocation.
type linkRun struct {
	files                              []string
	target                             codegen.Target
	maxSpace                           uint64
	jobs                               int
	check, noDelta, noPrune, noFnCache bool
	noShard                            bool
	dup, cacheDir                      string
	fncache                            *compile.FnCache
	relink                             string // edit-script path; "" = one-shot
	noRelink                           bool   // replay with cold full links (oracle)
}

func parseDupPolicy(name string) (link.DupPolicy, error) {
	switch name {
	case "error":
		return link.DupExportedError, nil
	case "rename":
		return link.DupExportedRename, nil
	}
	return 0, fmt.Errorf("-link-dup: unknown policy %q (want error or rename)", name)
}

// searchOptions assembles the shared search options of a -link run.
func (p linkRun) searchOptions() link.SearchOptions {
	return link.SearchOptions{
		ShardOptions: link.ShardOptions{
			Target:  p.target,
			Compile: compile.Options{Check: p.check, FnCache: p.fncache},
			Configure: func(c *compile.Compiler) {
				if p.noDelta {
					c.SetDelta(false)
				}
				if p.noFnCache {
					c.SetFnCache(false)
				}
			},
			Workers: p.jobs,
			NoShard: p.noShard,
		},
		MaxSpace: p.maxSpace,
		NoPrune:  p.noPrune,
	}
}

func printLinkPlanLine(pl *link.Plan) {
	fmt.Printf("linked %d TUs: %d functions, %d inlinable call sites (%d cross-TU, %d locals renamed, %d calls stay external)\n",
		len(pl.TUs), len(pl.Funcs), len(pl.Edges), pl.CrossTU, pl.Renamed, pl.ExternalCalls)
}

// printLinkSearchReport renders the mode-independent stdout block of one
// linked search; the -no-shard and -no-relink differential gates byte-diff
// it, so nothing schedule- or cache-dependent may appear here.
func printLinkSearchReport(pl *link.Plan, res link.SearchResult) {
	fmt.Printf("components: %d, recursive space %d evaluations total\n", len(res.Components), res.SpaceTotal)
	for _, cs := range res.Components {
		fmt.Printf("  component %2d: %3d funcs, %3d sites, space %8d, inlined %3d, delta %+d bytes\n",
			cs.Index, cs.Funcs, cs.Edges, cs.Space, cs.Inlined, cs.SizeDelta)
	}
	fmt.Printf("\nno inlining:    %6d bytes\n", res.NoInlineSize)
	fmt.Printf("optimal:        %6d bytes, inlining %d of %d sites\n",
		res.Size, res.Config.InlineCount(), len(pl.Edges))
	fmt.Printf("optimal inline sites: %v\n", res.Config.InlineSites())
}

func reportCapped(res link.SearchResult, maxSpace uint64) error {
	for _, cs := range res.Components {
		if cs.Capped {
			fmt.Fprintf(os.Stderr, "component %d: %d sites, recursive space %d+ evaluations\n",
				cs.Index, cs.Edges, cs.Space)
		}
	}
	return fmt.Errorf("a component's recursive space exceeds %d evaluations; raise -max-space", maxSpace)
}

// runLink links the argument files and runs the component-sharded optimal
// search (or the -no-shard merged oracle). Everything printed on stdout is
// mode-independent — the CI gate byte-diffs the two modes — while
// schedule- and mode-dependent counters go to stderr.
func runLink(p linkRun) error {
	if len(p.files) == 0 {
		return fmt.Errorf("usage: inlinesearch -link [flags] a.minc b.minc ...")
	}
	dup, err := parseDupPolicy(p.dup)
	if err != nil {
		return err
	}
	if p.relink != "" {
		return runRelink(p, dup)
	}
	l, err := link.New(fileTUs(p.files), link.Options{DupExported: dup})
	if err != nil {
		return err
	}
	pl := l.Plan()
	printLinkPlanLine(pl)

	res, ok, err := l.OptimalSearch(p.searchOptions())
	if err != nil {
		return err
	}
	if !ok {
		return reportCapped(res, p.maxSpace)
	}
	printLinkSearchReport(pl, res)

	fmt.Fprintf(os.Stderr, "evaluations: %d configurations compiled (config cache %v)\n",
		res.Evaluations, res.ConfigCache)
	fmt.Fprintf(os.Stderr, "search pruning: %v\n", res.Prune)
	fmt.Fprintf(os.Stderr, "function cache: %v\n", res.FuncCache)
	if p.cacheDir != "" {
		if err := p.fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "inlinesearch:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fn content cache: %v\n", p.fncache.Stats())
	return nil
}

func fileTUs(files []string) []link.TU {
	tus := make([]link.TU, 0, len(files))
	for _, path := range files {
		path := path
		tus = append(tus, link.LazyTU(path, func() (*ir.Module, error) {
			return source.Load(path)
		}))
	}
	return tus
}

// runRelink replays a -relink edit script: each patch step swaps one TU's
// contents, each search step reports the optimal search over the current
// unit set. Warm mode drives an incremental link.Session (dirty components
// re-solved, the rest replayed from the content-keyed result cache);
// -no-relink re-links and re-searches from scratch at every step — the
// differential oracle the ci.sh gate byte-diffs against. All stdout is
// mode-independent; patch/replay accounting goes to stderr.
func runRelink(p linkRun, dup link.DupPolicy) error {
	if p.noShard {
		return fmt.Errorf("-relink replay is always sharded; -no-shard applies to one-shot -link runs")
	}
	scriptData, err := os.ReadFile(p.relink)
	if err != nil {
		return fmt.Errorf("-relink: %w", err)
	}
	ops, err := link.ParseEditScript(scriptData)
	if err != nil {
		return fmt.Errorf("-relink %s: %w", p.relink, err)
	}
	scriptDir := filepath.Dir(p.relink)

	tus := fileTUs(p.files)
	var sess *link.Session
	cur := append([]link.TU(nil), tus...) // -no-relink: current contents
	if !p.noRelink {
		sess, err = link.NewSession(tus, link.SessionOptions{Link: link.Options{DupExported: dup}})
		if err != nil {
			return err
		}
	} else if _, err := link.New(cur, link.Options{DupExported: dup}); err != nil {
		return err
	}

	opts := p.searchOptions()
	for step, op := range ops {
		switch op.Verb {
		case "patch":
			path := op.Path
			if !filepath.IsAbs(path) {
				path = filepath.Join(scriptDir, path)
			}
			fmt.Printf("== step %d: patch %s <- %s ==\n", step+1, op.TU, op.Path)
			tu := link.LazyTU(op.TU, func() (*ir.Module, error) { return source.Load(path) })
			if p.noRelink {
				idx := -1
				for i := range cur {
					if cur[i].Name == op.TU {
						idx = i
						break
					}
				}
				if idx < 0 {
					return fmt.Errorf("step %d: link: no unit named %q", step+1, op.TU)
				}
				cur[idx] = tu
				if _, err := link.New(cur, link.Options{DupExported: dup}); err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
			} else {
				rep, err := sess.ReplaceNamed(tu)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				if rep.PlanReused {
					fmt.Fprintf(os.Stderr, "step %d: body-only edit, plan reused\n", step+1)
				} else {
					fmt.Fprintf(os.Stderr, "step %d: link surface changed, plan rebuilt\n", step+1)
				}
			}
		case "search":
			fmt.Printf("== step %d: search ==\n", step+1)
			var (
				pl   *link.Plan
				res  link.SearchResult
				info link.RelinkInfo
				ok   bool
			)
			if p.noRelink {
				l, err := link.New(cur, link.Options{DupExported: dup})
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
				pl = l.Plan()
				res, ok, err = l.OptimalSearch(opts)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
			} else {
				pl = sess.Plan()
				res, info, ok, err = sess.Search(opts)
				if err != nil {
					return fmt.Errorf("step %d: %w", step+1, err)
				}
			}
			if !ok {
				return reportCapped(res, p.maxSpace)
			}
			printLinkPlanLine(pl)
			printLinkSearchReport(pl, res)
			if !p.noRelink {
				fmt.Fprintf(os.Stderr, "step %d: components solved %d, replayed %d; residual solved %d, replayed %d\n",
					step+1, info.ComponentsSolved, info.ComponentsReplayed, info.ResidualSolved, info.ResidualReplayed)
			}
		case "tune":
			return fmt.Errorf("step %d: tune steps replay with inlinetune -relink", step+1)
		}
	}
	if p.cacheDir != "" {
		if err := p.fncache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "inlinesearch:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fn content cache: %v\n", p.fncache.Stats())
	return nil
}
