package optinline_test

import (
	"fmt"

	"optinline"
)

// The doubler program: a trivial wrapper the autotuner should inline.
const exampleSrc = `
func double(x) {
  return x + x;
}

export func quadruple(n) {
  return double(double(n));
}
`

func ExampleCompile() {
	p, err := optinline.Compile("doubler.minc", exampleSrc)
	if err != nil {
		panic(err)
	}
	fmt.Println("functions:", p.NumFunctions())
	fmt.Println("inlinable call sites:", p.NumCallSites())
	// Output:
	// functions: 2
	// inlinable call sites: 2
}

func ExampleProgram_Autotune() {
	p, err := optinline.Compile("doubler.minc", exampleSrc)
	if err != nil {
		panic(err)
	}
	tuned := p.Autotune(optinline.TuneOptions{Rounds: 2})
	opt, ok := p.Optimal(1 << 10)
	if !ok {
		panic("space too large")
	}
	fmt.Println("autotuned matches certified optimum:", tuned.Size == opt.Size)
	fmt.Println("both call sites inlined:", len(tuned.Decisions.InlinedSites()) == 2)
	// Output:
	// autotuned matches certified optimum: true
	// both call sites inlined: true
}

func ExampleProgram_Run() {
	p, err := optinline.Compile("doubler.minc", exampleSrc)
	if err != nil {
		panic(err)
	}
	before, _ := p.Run(p.NoInlining(), "quadruple", 5)
	tuned := p.Autotune(optinline.TuneOptions{Rounds: 2})
	after, _ := p.Run(tuned.Decisions, "quadruple", 5)
	fmt.Println("quadruple(5) =", before.Ret, "both ways:", before.Ret == after.Ret)
	fmt.Println("dynamic calls removed:", before.DynCalls-after.DynCalls)
	// Output:
	// quadruple(5) = 20 both ways: true
	// dynamic calls removed: 2
}

func ExampleProgram_Space() {
	p, err := optinline.Compile("doubler.minc", exampleSrc)
	if err != nil {
		panic(err)
	}
	s := p.Space(0)
	fmt.Printf("naive 2^%.0f, recursively partitioned %d evaluations\n", s.NaiveLog2, s.Recursive)
	// Output:
	// naive 2^2, recursively partitioned 4 evaluations
}
