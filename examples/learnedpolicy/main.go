// learnedpolicy demonstrates the paper's Section 6 research direction:
// using exhaustive optimal-inlining search as a *training-data generator*
// for a learned inlining heuristic. Half the corpus is searched exhaustively
// and its optimal decisions train a logistic-regression policy; the policy
// then competes against the hand-written -Os heuristic on held-out files.
//
// Run with: go run ./examples/learnedpolicy [-files 16]
package main

import (
	"flag"
	"fmt"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/mlheur"
	"optinline/internal/search"
	"optinline/internal/stats"
	"optinline/internal/workload"
)

func main() {
	files := flag.Int("files", 16, "corpus size")
	flag.Parse()

	p := workload.Profile{
		Name: "learned", Files: *files, TotalEdges: *files * 7,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.35,
		RecProb: 0.06, BranchProb: 0.5, MultiRootPct: 0.12,
	}
	bench := workload.Generate(p)

	var train, test []mlheur.Example
	type testCase struct {
		comp    *compile.Compiler
		optSize int
	}
	var cases []testCase
	searched := 0
	for _, f := range bench.Files {
		comp := compile.New(f.Module, codegen.TargetX86)
		g := comp.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		res, ok := search.Optimal(comp, search.Options{MaxSpace: 1 << 13})
		if !ok {
			continue
		}
		ds := mlheur.Dataset(comp.Module(), g, res.Config)
		if searched%2 == 0 {
			train = append(train, ds...)
		} else {
			test = append(test, ds...)
			cases = append(cases, testCase{comp: comp, optSize: res.Size})
		}
		searched++
	}
	fmt.Printf("exhaustively searched %d files; %d training decisions, %d held-out\n",
		searched, len(train), len(test))

	model, err := mlheur.Train(train, mlheur.TrainOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("held-out decision accuracy: %.1f%% (majority baseline %.1f%%)\n\n",
		model.Accuracy(test)*100, mlheur.MajorityBaseline(test)*100)

	fmt.Println("learned feature weights (standardized):")
	for j, name := range mlheur.FeatureNames {
		fmt.Printf("  %-24s %+0.3f\n", name, model.W[j])
	}

	var relLearned, relHeur []float64
	for _, tc := range cases {
		g := tc.comp.Graph()
		learned := tc.comp.Size(model.Config(tc.comp.Module(), g))
		heur := tc.comp.Size(heuristic.OsConfig(tc.comp.Module(), g))
		relLearned = append(relLearned, float64(learned)/float64(tc.optSize)*100)
		relHeur = append(relHeur, float64(heur)/float64(tc.optSize)*100)
	}
	fmt.Printf("\nsize vs certified optimal (median over %d held-out files):\n", len(cases))
	fmt.Printf("  -Os heuristic:  %.1f%%\n", stats.Median(relHeur))
	fmt.Printf("  learned policy: %.1f%%\n", stats.Median(relLearned))
}
