// sqlite_amalgamation reproduces the paper's Section 5.2.3 SQLite case
// study on the synthetic amalgamation: one very large translation unit,
// autotuned for the X86 target (against the -Os heuristic) and for the
// WASM-like target (against a no-inlining baseline, emcc-style).
//
// Run with: go run ./examples/sqlite_amalgamation [-edges 300] [-rounds 2]
package main

import (
	"flag"
	"fmt"
	"time"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/workload"
)

func main() {
	edges := flag.Int("edges", 300, "approximate inlinable calls in the unit (600 = full)")
	rounds := flag.Int("rounds", 2, "autotuning rounds per session")
	flag.Parse()

	p := workload.Profile{
		Name: "sqlite", Files: 1, TotalEdges: *edges,
		ConstArgProb: 0.4, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.3,
		RecProb: 0.08, BranchProb: 0.5, MultiRootPct: 0.12,
	}
	file := workload.Generate(p).Files[0]

	for _, target := range []codegen.Target{codegen.TargetX86, codegen.TargetWASM} {
		comp := compile.New(file.Module, target)
		g := comp.Graph()
		noInline := comp.Size(callgraph.NewConfig())
		hc := heuristic.OsConfig(comp.Module(), g)
		osSize := comp.Size(hc)

		fmt.Printf("== target %s: %d inlinable calls ==\n", target, len(g.Edges))
		fmt.Printf("  no inlining:   %7d bytes\n", noInline)
		fmt.Printf("  -Os heuristic: %7d bytes (%.1f%% of no-inline)\n",
			osSize, pct(osSize, noInline))

		start := time.Now()
		opts := autotune.Options{Rounds: *rounds}
		clean := autotune.Tune(comp, nil, opts)
		inited := autotune.Tune(comp, hc, opts)
		fmt.Printf("  tuned (clean): %7d bytes (%.1f%% of -Os)\n", clean.Size, pct(clean.Size, osSize))
		fmt.Printf("  tuned (init):  %7d bytes (%.1f%% of -Os)\n", inited.Size, pct(inited.Size, osSize))

		if target == codegen.TargetWASM {
			// The paper's WASM observation: against a no-inlining baseline
			// (emcc -Os default) the LLVM-style heuristic inflates the
			// binary while the tuner shaves it slightly.
			fmt.Printf("  vs no-inline baseline: heuristic %.1f%%, tuned %.1f%% (paper: +18.3%% / -1%%)\n",
				pct(osSize, noInline), pct(min(clean.Size, inited.Size), noInline))
		}
		fmt.Printf("  tuning took %v (%d compilations)\n\n",
			time.Since(start).Round(time.Millisecond), comp.Evaluations())
	}
}

func pct(a, b int) float64 { return float64(a) / float64(b) * 100 }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
