// roundtuning shows why multiple autotuning rounds matter (the paper's
// Section 5.2.2 and Table 4): certain inlining decisions only pay off in
// the presence of others, so one local round gets stuck while successive
// rounds keep extending the scope.
//
// Run with: go run ./examples/roundtuning
package main

import (
	"fmt"
	"log"

	"optinline"
)

// The program is built so that the profitable configuration inlines a
// whole chain: inlining dispatch's call into process lets the constant
// mode fold, which exposes handler_a's guard, which only folds once
// handler_a is inlined too. Single toggles from a clean slate cannot see
// the combined win.
const src = `
func handler_a(x, mode) {
  if (mode == 1) { return x + 1; }
  var acc = x;
  for (var i = 0; i < 6; i = i + 1) { acc = acc * 3 + i; }
  return acc;
}

func handler_b(x) {
  var acc = 0;
  for (var i = 0; i < 4; i = i + 1) { acc = acc + x * i; }
  return acc;
}

func dispatch(x, mode) {
  if (mode == 1) { return handler_a(x, mode); }
  return handler_b(x);
}

func process(x) {
  return dispatch(x, 1);
}

export func main(n) {
  var total = 0;
  for (var i = 0; i < n; i = i + 1) {
    total = total + process(i);
  }
  output total;
  return total;
}
`

func main() {
	p, err := optinline.Compile("rounds.minc", src)
	if err != nil {
		log.Fatal(err)
	}
	osSize := p.HeuristicSize()
	fmt.Printf("%d call sites; -Os heuristic: %d bytes\n\n", p.NumCallSites(), osSize)

	for _, rounds := range []int{1, 2, 3, 4} {
		res := p.Autotune(optinline.TuneOptions{Rounds: rounds, Init: optinline.InitHeuristic})
		fmt.Printf("rounds=%d:", rounds)
		for _, r := range res.Rounds {
			fmt.Printf("  [r%d %d bytes, %d inlined]", r.Round, r.Size, r.Inlined)
		}
		fmt.Printf("  -> best %d bytes (%.1f%% of -Os)\n",
			res.Size, float64(res.Size)/float64(osSize)*100)
	}

	opt, ok := p.Optimal(1 << 20)
	if !ok {
		log.Fatal("space too large")
	}
	fmt.Printf("\ncertified optimum: %d bytes, inlining sites %v\n", opt.Size, opt.Decisions.InlinedSites())

	best := p.Autotune(optinline.TuneOptions{Rounds: 4})
	fmt.Printf("combined 4-round autotuner: %d bytes", best.Size)
	if best.Size == opt.Size {
		fmt.Println(" — optimal ✓")
	} else {
		fmt.Printf(" — %.1f%% above optimal\n", float64(best.Size)/float64(opt.Size)*100-100)
	}
}
