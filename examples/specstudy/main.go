// specstudy reproduces the paper's Section 4 roofline analysis on a slice
// of the synthetic SPEC2017-like corpus: for every exhaustively searchable
// file it compares the -Os heuristic against certified optimal inlining,
// then tallies the agreement matrix (Table 2) and the inlined call-chain
// census (Figure 9).
//
// Run with: go run ./examples/specstudy [-scale 0.5]
package main

import (
	"flag"
	"fmt"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/search"
	"optinline/internal/stats"
	"optinline/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.5, "corpus scale (1.0 = full)")
	flag.Parse()

	profiles := workload.SPECProfiles()
	var matrix [2][2]int
	files, optimalHits := 0, 0
	var overheads []float64
	chainHist := map[int]int{}

	for _, p := range profiles {
		p.Files = int(float64(p.Files)**scale) + 1
		p.TotalEdges = int(float64(p.TotalEdges)**scale) + 1
		bench := workload.Generate(p)
		for _, f := range bench.Files {
			comp := compile.New(f.Module, codegen.TargetX86)
			g := comp.Graph()
			if len(g.Edges) == 0 {
				continue
			}
			res, ok := search.Optimal(comp, search.Options{MaxSpace: 1 << 12})
			if !ok {
				continue // too large to certify; the harness covers these
			}
			files++
			hc := heuristic.OsConfig(comp.Module(), g)
			heurSize := comp.Size(hc)
			if heurSize <= res.Size {
				optimalHits++
			} else {
				overheads = append(overheads, (float64(heurSize)/float64(res.Size)-1)*100)
			}
			m := callgraph.Agreement(g.Sites(), res.Config, hc)
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					matrix[a][b] += m[a][b]
				}
			}
			for l, n := range search.ChainHistogram(search.ChainLengths(g, res.Config)) {
				chainHist[l] += n
			}
		}
	}

	fmt.Printf("exhaustively searched files: %d\n", files)
	fmt.Printf("heuristic finds the optimum in %d (%.0f%%); paper: 46%%\n",
		optimalHits, float64(optimalHits)/float64(files)*100)
	fmt.Printf("median overhead when non-optimal: %.2f%%; paper: 2.37%%\n\n", stats.Median(overheads))

	total := 0
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			total += matrix[a][b]
		}
	}
	fmt.Println("decision agreement (rows: optimal, cols: heuristic):")
	fmt.Printf("              no-inline  inline\n")
	fmt.Printf("  no-inline   %9d  %6d\n", matrix[0][0], matrix[0][1])
	fmt.Printf("  inline      %9d  %6d\n", matrix[1][0], matrix[1][1])
	fmt.Printf("agreement: %.1f%% of %d decisions (paper: 72.7%%)\n\n",
		float64(matrix[0][0]+matrix[1][1])/float64(total)*100, total)

	fmt.Println("optimally inlined call-chain lengths (paper: length 1 dominates):")
	for l := 1; l <= 6; l++ {
		if chainHist[l] > 0 {
			fmt.Printf("  length %d: %d chains\n", l, chainHist[l])
		}
	}
}
