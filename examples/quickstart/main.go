// Quickstart: compile a MinC program, measure its size under different
// inlining strategies, and certify the autotuner against the exhaustive
// optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"optinline"
)

const src = `
// A little fixed-point evaluator with the structures that make inlining
// interesting: a trivial wrapper, a foldable guard, and a heavyweight
// helper with two callers.

global steps;

func square(x) {
  return x * x;
}

func clamp(x, lo, hi) {
  if (x < lo) { return lo; }
  if (x > hi) { return hi; }
  return x;
}

func step(x) {
  var y = (square(x) + 3 * x) >> 1;
  return clamp(y, 0, 1000);
}

export func iterate(x0, n) {
  var x = x0;
  for (var i = 0; i < n; i = i + 1) {
    x = step(x);
    steps = steps + 1;
  }
  output x;
  return x;
}
`

func main() {
	p, err := optinline.Compile("fixedpoint.minc", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d functions, %d inlinable call sites\n",
		p.NumFunctions(), p.NumCallSites())

	space := p.Space(0)
	fmt.Printf("search space: naive 2^%.0f, recursively partitioned %d evaluations\n\n",
		space.NaiveLog2, space.Recursive)

	noInline := p.NoInlineSize()
	osSize := p.HeuristicSize()
	fmt.Printf("no inlining:   %4d bytes\n", noInline)
	fmt.Printf("-Os heuristic: %4d bytes (%.1f%%)\n", osSize, pct(osSize, noInline))

	tuned := p.Autotune(optinline.TuneOptions{Rounds: 4})
	fmt.Printf("autotuned:     %4d bytes (%.1f%%) after %d compilations\n",
		tuned.Size, pct(tuned.Size, noInline), tuned.Compilations)

	opt, ok := p.Optimal(1 << 20)
	if !ok {
		log.Fatal("search space unexpectedly large")
	}
	fmt.Printf("optimal:       %4d bytes (%.1f%%), certified with %d compilations\n",
		opt.Size, pct(opt.Size, noInline), opt.Evaluations)
	if tuned.Size == opt.Size {
		fmt.Println("\nthe autotuner found a provably optimal configuration ✓")
	} else {
		fmt.Printf("\nautotuner is %.1f%% above optimal\n", pct(tuned.Size, opt.Size)-100)
	}

	// Behaviour is preserved whatever the decisions.
	a, err := p.Run(p.NoInlining(), "iterate", 7, 5)
	if err != nil {
		log.Fatal(err)
	}
	b, err := p.Run(tuned.Decisions, "iterate", 7, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niterate(7,5) = %d in both builds; dynamic calls %d -> %d\n",
		a.Ret, a.DynCalls, b.DynCalls)

	fmt.Println("\ncall graph under the tuned decisions (Graphviz):")
	fmt.Println(tuned.Decisions.DOT("fixedpoint"))
}

func pct(a, b int) float64 { return float64(a) / float64(b) * 100 }
